//! Tokenizer for the Fuse By dialect.

use crate::error::{QueryError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare or quoted identifier (`Name`, `"odd name"`).
    Ident(String),
    /// String literal (`'text'`).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl Token {
    /// If this token is an identifier matching `kw` case-insensitively.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenize a query string. Comments (`-- …` to end of line) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let push = |out: &mut Vec<Spanned>, t: Token| {
            out.push(Spanned {
                token: t,
                offset: start,
            })
        };
        match c {
            '(' => {
                push(&mut out, Token::LParen);
                i += 1;
            }
            ')' => {
                push(&mut out, Token::RParen);
                i += 1;
            }
            ',' => {
                push(&mut out, Token::Comma);
                i += 1;
            }
            '.' => {
                push(&mut out, Token::Dot);
                i += 1;
            }
            '*' => {
                push(&mut out, Token::Star);
                i += 1;
            }
            ';' => {
                push(&mut out, Token::Semicolon);
                i += 1;
            }
            '+' => {
                push(&mut out, Token::Plus);
                i += 1;
            }
            '-' => {
                push(&mut out, Token::Minus);
                i += 1;
            }
            '/' => {
                push(&mut out, Token::Slash);
                i += 1;
            }
            '%' => {
                push(&mut out, Token::Percent);
                i += 1;
            }
            '=' => {
                push(&mut out, Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Ne);
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "stray `!` (did you mean `!=`?)".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    push(&mut out, Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    push(&mut out, Token::Ne);
                    i += 2;
                }
                _ => {
                    push(&mut out, Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Ge);
                    i += 2;
                } else {
                    push(&mut out, Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(QueryError::Lex {
                                position: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(j + 1) == Some(&b'\'') {
                                s.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch_start = j;
                            let mut ch_end = j + 1;
                            while ch_end < bytes.len() && (bytes[ch_end] & 0xC0) == 0x80 {
                                ch_end += 1;
                            }
                            s.push_str(&input[ch_start..ch_end]);
                            j = ch_end;
                        }
                    }
                }
                push(&mut out, Token::Str(s));
                i = j;
            }
            '"' => {
                // Quoted identifier.
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(QueryError::Lex {
                                position: i,
                                message: "unterminated quoted identifier".into(),
                            })
                        }
                        Some(b'"') => {
                            j += 1;
                            break;
                        }
                        Some(_) => {
                            let ch_start = j;
                            let mut ch_end = j + 1;
                            while ch_end < bytes.len() && (bytes[ch_end] & 0xC0) == 0x80 {
                                ch_end += 1;
                            }
                            s.push_str(&input[ch_start..ch_end]);
                            j = ch_end;
                        }
                    }
                }
                push(&mut out, Token::Ident(s));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &input[i..j];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| QueryError::Lex {
                        position: i,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    push(&mut out, Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| QueryError::Lex {
                        position: i,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    push(&mut out, Token::Int(v));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = bytes[j] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        j += 1;
                    } else if bytes[j] >= 0x80 {
                        // Allow non-ASCII identifier characters.
                        let mut ch_end = j + 1;
                        while ch_end < bytes.len() && (bytes[ch_end] & 0xC0) == 0x80 {
                            ch_end += 1;
                        }
                        j = ch_end;
                    } else {
                        break;
                    }
                }
                push(&mut out, Token::Ident(input[i..j].to_string()));
                i = j;
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_punctuation() {
        let t = toks("SELECT Name, RESOLVE(Age, max) FUSE FROM A, B FUSE BY (Name)");
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t[0].is_keyword("select"));
        assert!(t.contains(&Token::LParen));
        assert!(t.contains(&Token::Comma));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42), Token::Eof]);
        assert_eq!(toks("3.5"), vec![Token::Float(3.5), Token::Eof]);
        // `1.` is Int then Dot (trailing dot is not a float).
        assert_eq!(toks("1."), vec![Token::Int(1), Token::Dot, Token::Eof]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into()), Token::Eof]);
        assert_eq!(
            toks("'héllo'"),
            vec![Token::Str("héllo".into()), Token::Eof]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            toks("\"weird name\""),
            vec![Token::Ident("weird name".into()), Token::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <> b <= c >= d != e"),
            vec![
                Token::Ident("a".into()),
                Token::Ne,
                Token::Ident("b".into()),
                Token::Le,
                Token::Ident("c".into()),
                Token::Ge,
                Token::Ident("d".into()),
                Token::Ne,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- the select list\n *");
        assert_eq!(
            t,
            vec![Token::Ident("SELECT".into()), Token::Star, Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn stray_bang_errors() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let spanned = tokenize("SELECT x").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 7);
    }

    #[test]
    fn unicode_identifiers() {
        assert_eq!(
            toks("Straße"),
            vec![Token::Ident("Straße".into()), Token::Eof]
        );
    }
}
