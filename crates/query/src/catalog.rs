//! Table catalogs: where the executor finds relations by alias.

use hummer_engine::Table;
use std::collections::HashMap;

/// Anything that can supply tables by alias (the metadata repository in
/// `hummer-core` implements this; tests use [`TableSet`]).
pub trait Catalog {
    /// Look up a table under a (case-insensitive) alias.
    fn table(&self, alias: &str) -> Option<&Table>;
}

/// A simple in-memory catalog.
#[derive(Debug, Clone, Default)]
pub struct TableSet {
    tables: HashMap<String, Table>,
}

impl TableSet {
    /// An empty catalog.
    pub fn new() -> Self {
        TableSet::default()
    }

    /// Register a table under its own name.
    pub fn add(&mut self, table: Table) -> &mut Self {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
        self
    }

    /// Register a table under an explicit alias.
    pub fn add_as(&mut self, alias: impl Into<String>, mut table: Table) -> &mut Self {
        let alias = alias.into();
        table.set_name(alias.clone());
        self.tables.insert(alias.to_ascii_lowercase(), table);
        self
    }

    /// Registered aliases, sorted.
    pub fn aliases(&self) -> Vec<&str> {
        let mut a: Vec<&str> = self.tables.values().map(|t| t.name()).collect();
        a.sort_unstable();
        a
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl Catalog for TableSet {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.tables.get(&alias.to_ascii_lowercase())
    }
}

impl Catalog for HashMap<String, Table> {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.get(alias)
            .or_else(|| self.get(&alias.to_ascii_lowercase()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    #[test]
    fn add_and_lookup_case_insensitive() {
        let mut c = TableSet::new();
        c.add(table! { "Students" => ["x"]; [1] });
        assert!(c.table("students").is_some());
        assert!(c.table("STUDENTS").is_some());
        assert!(c.table("nope").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn add_as_renames() {
        let mut c = TableSet::new();
        c.add_as("alias1", table! { "Orig" => ["x"]; [1] });
        let t = c.table("Alias1").unwrap();
        assert_eq!(t.name(), "alias1");
        assert_eq!(c.aliases(), vec!["alias1"]);
    }

    #[test]
    fn hashmap_catalog() {
        let mut m: HashMap<String, Table> = HashMap::new();
        m.insert("t".into(), table! { "t" => ["x"]; [1] });
        assert!(Catalog::table(&m, "t").is_some());
        assert!(Catalog::table(&m, "T").is_some());
    }
}
