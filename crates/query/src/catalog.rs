//! Table catalogs: where the executor finds relations by alias.

use hummer_engine::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// Anything that can supply tables by alias (the metadata repository in
/// `hummer-core` implements this; tests use [`TableSet`]).
pub trait Catalog {
    /// Look up a table under a (case-insensitive) alias.
    fn table(&self, alias: &str) -> Option<&Table>;
}

// Smart pointers and references forward to the pointee, so a catalog can be
// shared across threads (e.g. `Arc<TableSet>` in a long-lived query service)
// and still be passed wherever `&dyn Catalog` is expected.
impl<C: Catalog + ?Sized> Catalog for &C {
    fn table(&self, alias: &str) -> Option<&Table> {
        (**self).table(alias)
    }
}

impl<C: Catalog + ?Sized> Catalog for Arc<C> {
    fn table(&self, alias: &str) -> Option<&Table> {
        (**self).table(alias)
    }
}

impl<C: Catalog + ?Sized> Catalog for Box<C> {
    fn table(&self, alias: &str) -> Option<&Table> {
        (**self).table(alias)
    }
}

/// A table paired with a monotonically increasing content version.
///
/// Concurrent readers (a fusion service's worker threads) snapshot the
/// `Arc`-ed tables cheaply; the version participates in cache keys so any
/// re-registration invalidates prepared artifacts derived from the old
/// contents.
#[derive(Debug, Clone)]
pub struct VersionedTable {
    /// The table (shared, immutable).
    pub table: Arc<Table>,
    /// Content version: bumped on every (re-)registration.
    pub version: u64,
}

/// A catalog of [`VersionedTable`]s — the shareable, concurrent-reader
/// counterpart of [`TableSet`].
#[derive(Debug, Clone, Default)]
pub struct VersionedTableSet {
    tables: HashMap<String, VersionedTable>,
    next_version: u64,
}

impl VersionedTableSet {
    /// An empty versioned catalog.
    pub fn new() -> Self {
        VersionedTableSet::default()
    }

    /// Register (or replace) a table under `alias`, bumping the version.
    /// Returns the version assigned to this registration.
    pub fn register(&mut self, alias: impl Into<String>, mut table: Table) -> u64 {
        let alias = alias.into();
        table.set_name(alias.clone());
        self.next_version += 1;
        let version = self.next_version;
        self.tables.insert(
            alias.to_ascii_lowercase(),
            VersionedTable {
                table: Arc::new(table),
                version,
            },
        );
        version
    }

    /// Re-register a table at an explicit version (crash recovery). The
    /// version clock advances past every restored version, so registrations
    /// after a restart never collide with pre-crash versions — prepared
    /// artifacts cached under `(alias, version)` keys stay meaningful.
    pub fn restore(&mut self, alias: impl Into<String>, mut table: Table, version: u64) {
        let alias = alias.into();
        table.set_name(alias.clone());
        self.next_version = self.next_version.max(version);
        self.tables.insert(
            alias.to_ascii_lowercase(),
            VersionedTable {
                table: Arc::new(table),
                version,
            },
        );
    }

    /// The version the next [`VersionedTableSet::register`] will assign.
    /// Lets a write-ahead logger record the version *before* committing the
    /// registration.
    pub fn upcoming_version(&self) -> u64 {
        self.next_version + 1
    }

    /// Advance the version clock to at least `version` without registering
    /// anything. Crash recovery calls this with the highest version the log
    /// ever assigned — which can exceed every *surviving* table's version
    /// when the newest table was deregistered before the crash — so
    /// post-restart registrations never reuse a pre-crash version.
    pub fn advance_version_clock(&mut self, version: u64) {
        self.next_version = self.next_version.max(version);
    }

    /// Look up a table together with its version.
    pub fn get(&self, alias: &str) -> Option<&VersionedTable> {
        self.tables.get(&alias.to_ascii_lowercase())
    }

    /// Remove a table; returns whether it existed.
    pub fn remove(&mut self, alias: &str) -> bool {
        self.tables.remove(&alias.to_ascii_lowercase()).is_some()
    }

    /// Registered entries sorted by table name.
    pub fn entries(&self) -> Vec<&VersionedTable> {
        let mut v: Vec<&VersionedTable> = self.tables.values().collect();
        v.sort_by(|a, b| a.table.name().cmp(b.table.name()));
        v
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl Catalog for VersionedTableSet {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.get(alias).map(|v| v.table.as_ref())
    }
}

/// A simple in-memory catalog.
#[derive(Debug, Clone, Default)]
pub struct TableSet {
    tables: HashMap<String, Table>,
}

impl TableSet {
    /// An empty catalog.
    pub fn new() -> Self {
        TableSet::default()
    }

    /// Register a table under its own name.
    pub fn add(&mut self, table: Table) -> &mut Self {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
        self
    }

    /// Register a table under an explicit alias.
    pub fn add_as(&mut self, alias: impl Into<String>, mut table: Table) -> &mut Self {
        let alias = alias.into();
        table.set_name(alias.clone());
        self.tables.insert(alias.to_ascii_lowercase(), table);
        self
    }

    /// Registered aliases, sorted.
    pub fn aliases(&self) -> Vec<&str> {
        let mut a: Vec<&str> = self.tables.values().map(|t| t.name()).collect();
        a.sort_unstable();
        a
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl Catalog for TableSet {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.tables.get(&alias.to_ascii_lowercase())
    }
}

impl Catalog for HashMap<String, Table> {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.get(alias)
            .or_else(|| self.get(&alias.to_ascii_lowercase()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    #[test]
    fn add_and_lookup_case_insensitive() {
        let mut c = TableSet::new();
        c.add(table! { "Students" => ["x"]; [1] });
        assert!(c.table("students").is_some());
        assert!(c.table("STUDENTS").is_some());
        assert!(c.table("nope").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn add_as_renames() {
        let mut c = TableSet::new();
        c.add_as("alias1", table! { "Orig" => ["x"]; [1] });
        let t = c.table("Alias1").unwrap();
        assert_eq!(t.name(), "alias1");
        assert_eq!(c.aliases(), vec!["alias1"]);
    }

    #[test]
    fn shared_catalogs_forward() {
        let mut c = TableSet::new();
        c.add(table! { "T" => ["x"]; [1] });
        let shared = Arc::new(c);
        assert!(shared.table("t").is_some());
        let by_ref: &TableSet = &shared;
        assert!(by_ref.table("T").is_some());
        let boxed: Box<dyn Catalog> = Box::new(TableSet::new());
        assert!(boxed.table("t").is_none());
    }

    #[test]
    fn versioned_set_bumps_on_replace() {
        let mut v = VersionedTableSet::new();
        let v1 = v.register("T", table! { "X" => ["a"]; [1] });
        let v2 = v.register("t", table! { "X" => ["a"]; [2] });
        assert!(v2 > v1);
        assert_eq!(v.len(), 1);
        let entry = v.get("T").unwrap();
        assert_eq!(entry.version, v2);
        assert_eq!(entry.table.name(), "t");
        assert!(Catalog::table(&v, "T").is_some());
        assert!(v.remove("T"));
        assert!(v.is_empty());
    }

    #[test]
    fn restore_keeps_versions_and_clock() {
        let mut v = VersionedTableSet::new();
        v.restore("B", table! { "X" => ["a"]; [1] }, 7);
        v.restore("A", table! { "X" => ["a"]; [2] }, 3);
        assert_eq!(v.get("b").unwrap().version, 7);
        assert_eq!(v.get("A").unwrap().version, 3);
        assert_eq!(v.get("a").unwrap().table.name(), "A");
        // The clock resumes past the highest restored version.
        assert_eq!(v.upcoming_version(), 8);
        let assigned = v.register("C", table! { "X" => ["a"]; [3] });
        assert_eq!(assigned, 8);
        assert_eq!(v.upcoming_version(), 9);
        // An explicit clock advance (recovery of a deleted-table version)
        // moves forward, never backward.
        v.advance_version_clock(20);
        assert_eq!(v.upcoming_version(), 21);
        v.advance_version_clock(5);
        assert_eq!(v.upcoming_version(), 21);
    }

    #[test]
    fn versioned_entries_sorted() {
        let mut v = VersionedTableSet::new();
        v.register("b", table! { "X" => ["a"]; [1] });
        v.register("a", table! { "X" => ["a"]; [1] });
        let names: Vec<&str> = v.entries().iter().map(|e| e.table.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn hashmap_catalog() {
        let mut m: HashMap<String, Table> = HashMap::new();
        m.insert("t".into(), table! { "t" => ["x"]; [1] });
        assert!(Catalog::table(&m, "t").is_some());
        assert!(Catalog::table(&m, "T").is_some());
    }
}
