//! # hummer-query — the Fuse By SQL dialect
//!
//! HumMer "provides a subset of SQL as a query language, which consists of
//! Select-Project-Join queries, and allows sorting, grouping, and
//! aggregation. In addition, we specifically support the Fuse By statement"
//! (paper §2.1, Fig. 1). This crate is the textual front end:
//!
//! * [`lexer`] — tokenizer (contextual keywords, quoted identifiers,
//!   `--` comments),
//! * [`ast`] — the parsed statement,
//! * [`parser`] — recursive descent over Fig. 1's grammar plus the SQL
//!   subset (`WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`, aggregates),
//! * [`exec`] — execution against a [`catalog::Catalog`]: `FUSE FROM`
//!   becomes a `sourceID`-tagged full outer union, `FUSE BY` drives the
//!   fusion operator with the `RESOLVE` specifications, and plain queries
//!   run as ordinary SPJ/grouping plans.
//!
//! ## Example
//!
//! ```
//! use hummer_engine::table;
//! use hummer_query::{run_query, TableSet};
//! use hummer_fusion::FunctionRegistry;
//!
//! let mut catalog = TableSet::new();
//! catalog.add(table! { "EE_Student"  => ["Name", "Age"]; ["Alice", 22], ["Bob", 24] });
//! catalog.add(table! { "CS_Students" => ["Name", "Age"]; ["Alice", 23] });
//!
//! // The paper's running example (§2.1):
//! let out = run_query(
//!     "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)",
//!     &catalog,
//!     &FunctionRegistry::standard(),
//! ).unwrap();
//! assert_eq!(out.table.len(), 2); // one tuple per student
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{FromClause, FuseQuery, OrderKey, SelectItem};
pub use catalog::{Catalog, TableSet, VersionedTable, VersionedTableSet};
pub use error::{QueryError, Result};
pub use exec::{
    combine_tables, execute, execute_combined, execute_combined_par, run_query, FusionInfo,
    QueryOutput,
};
pub use hummer_fusion::Parallelism;
pub use parser::parse;
