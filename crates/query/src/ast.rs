//! Abstract syntax of the Fuse By dialect (paper Fig. 1), a superset of
//! Select-Project-Join SQL with sorting, grouping, and aggregation.

use hummer_engine::Expr;
use hummer_fusion::ResolutionSpec;

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — "replaced by all attributes present in the sources" (§2.1).
    Wildcard,
    /// A plain column reference with an optional alias.
    Column {
        /// Column name.
        name: String,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// `RESOLVE(col)` or `RESOLVE(col, function(args…))`.
    Resolve {
        /// The column whose conflicts are resolved.
        column: String,
        /// The resolution function; `None` means the default (`COALESCE`).
        function: Option<ResolutionSpec>,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// A standard aggregate in a plain (non-fusion) query:
    /// `max(Age)`, `count(*)`.
    Aggregate {
        /// Function name (`min`, `max`, `sum`, `avg`, `count`).
        function: String,
        /// Input column; `None` for `count(*)`.
        column: Option<String>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// The `FROM` clause: plain SQL (`FROM`) combines tables by join/cross
/// product, `FUSE FROM` combines them "by outer union instead of cross
/// product" (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// Referenced table names (registry aliases), in query order; the first
    /// is the preferred schema.
    pub tables: Vec<String>,
    /// True for `FUSE FROM`.
    pub fuse: bool,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Column (possibly an alias from the select list).
    pub column: String,
    /// Ascending? (`ASC` default.)
    pub ascending: bool,
}

/// A parsed Fuse By statement.
#[derive(Debug, Clone, PartialEq)]
pub struct FuseQuery {
    /// The select list.
    pub select: Vec<SelectItem>,
    /// `FROM` / `FUSE FROM`.
    pub from: FromClause,
    /// `WHERE` predicate (applies before fusion).
    pub where_clause: Option<Expr>,
    /// `FUSE BY (cols)` — the object identifier; `None` for plain queries.
    pub fuse_by: Option<Vec<String>>,
    /// Plain `GROUP BY` (mutually exclusive with `FUSE BY`).
    pub group_by: Vec<String>,
    /// `HAVING` predicate (applies after fusion/grouping).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
}

impl FuseQuery {
    /// True for data-fusion queries (`FUSE BY` present or `FUSE FROM`
    /// used).
    pub fn is_fusion(&self) -> bool {
        self.fuse_by.is_some() || self.from.fuse
    }

    /// The explicit `RESOLVE` specifications, in select-list order.
    pub fn resolutions(&self) -> Vec<(&str, Option<&ResolutionSpec>)> {
        self.select
            .iter()
            .filter_map(|item| match item {
                SelectItem::Resolve {
                    column, function, ..
                } => Some((column.as_str(), function.as_ref())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_detection() {
        let q = FuseQuery {
            select: vec![SelectItem::Wildcard],
            from: FromClause {
                tables: vec!["A".into()],
                fuse: true,
            },
            where_clause: None,
            fuse_by: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        assert!(q.is_fusion());
        let mut plain = q.clone();
        plain.from.fuse = false;
        assert!(!plain.is_fusion());
        plain.fuse_by = Some(vec!["Name".into()]);
        assert!(plain.is_fusion());
    }

    #[test]
    fn resolutions_extracted_in_order() {
        let q = FuseQuery {
            select: vec![
                SelectItem::Column {
                    name: "Name".into(),
                    alias: None,
                },
                SelectItem::Resolve {
                    column: "Age".into(),
                    function: Some(ResolutionSpec::named("max")),
                    alias: None,
                },
                SelectItem::Resolve {
                    column: "City".into(),
                    function: None,
                    alias: None,
                },
            ],
            from: FromClause {
                tables: vec!["A".into()],
                fuse: true,
            },
            where_clause: None,
            fuse_by: Some(vec!["Name".into()]),
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        let r = q.resolutions();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, "Age");
        assert!(r[0].1.is_some());
        assert!(r[1].1.is_none());
    }
}
