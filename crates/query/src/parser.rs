//! Recursive-descent parser for the Fuse By dialect.
//!
//! Implements the grammar of paper Fig. 1 plus the SPJ/grouping/sorting
//! subset the demo supports:
//!
//! ```text
//! query      := SELECT select_list (FUSE FROM | FROM) tables
//!               [WHERE expr] [FUSE BY (cols) | GROUP BY cols]
//!               [HAVING expr] [ORDER BY key [ASC|DESC], …] [;]
//! select_item:= * | RESOLVE(col [, func[(args)]]) [AS a]
//!             | agg(col|*) [AS a] | col [AS a]
//! ```
//!
//! Keywords are contextual: any identifier equal (case-insensitively) to a
//! keyword plays that role, anything else is a name.

use crate::ast::{FromClause, FuseQuery, OrderKey, SelectItem};
use crate::error::{QueryError, Result};
use crate::lexer::{tokenize, Spanned, Token};
use hummer_engine::expr::{ArithOp, CmpOp};
use hummer_engine::{Expr, Value};
use hummer_fusion::ResolutionSpec;

/// Aggregate function names recognized in plain queries.
const AGGREGATES: [&str; 5] = ["min", "max", "sum", "avg", "count"];

/// Parse a Fuse By statement.
pub fn parse(input: &str) -> Result<FuseQuery> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            position: self.offset(),
            message: message.into(),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        self.peek().is_keyword(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found `{}`", self.peek())))
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.peek() == t {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found `{}`", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        // A trailing semicolon is allowed.
        while matches!(self.peek(), Token::Semicolon) {
            self.advance();
        }
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input `{}`", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Token::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found `{other}`"))),
        }
    }

    /// A column reference, possibly qualified (`table.col` → `table.col`).
    fn column_ref(&mut self) -> Result<String> {
        let first = self.ident("column name")?;
        if matches!(self.peek(), Token::Dot) {
            self.advance();
            let second = self.ident("column name after `.`")?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    // -- query ------------------------------------------------------------

    fn query(&mut self) -> Result<FuseQuery> {
        self.expect_keyword("select")?;
        let select = self.select_list()?;
        let from = self.parse_from_clause()?;
        let where_clause = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut fuse_by = None;
        let mut group_by = Vec::new();
        if self.at_keyword("fuse") {
            self.advance();
            self.expect_keyword("by")?;
            self.expect(&Token::LParen, "`(` after FUSE BY")?;
            let mut cols = vec![self.column_ref()?];
            while matches!(self.peek(), Token::Comma) {
                self.advance();
                cols.push(self.column_ref()?);
            }
            self.expect(&Token::RParen, "`)` closing FUSE BY")?;
            fuse_by = Some(cols);
        } else if self.at_keyword("group") {
            self.advance();
            self.expect_keyword("by")?;
            group_by.push(self.column_ref()?);
            while matches!(self.peek(), Token::Comma) {
                self.advance();
                group_by.push(self.column_ref()?);
            }
        }

        let having = if self.eat_keyword("having") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let column = self.column_ref()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                order_by.push(OrderKey { column, ascending });
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }

        Ok(FuseQuery {
            select,
            from,
            where_clause,
            fuse_by,
            group_by,
            having,
            order_by,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Token::Comma) {
            self.advance();
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("as") {
            Ok(Some(self.ident("alias after AS")?))
        } else {
            Ok(None)
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), Token::Star) {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        if self.at_keyword("resolve") {
            self.advance();
            self.expect(&Token::LParen, "`(` after RESOLVE")?;
            let column = self.column_ref()?;
            let function = if matches!(self.peek(), Token::Comma) {
                self.advance();
                Some(self.resolution_spec()?)
            } else {
                None
            };
            self.expect(&Token::RParen, "`)` closing RESOLVE")?;
            let alias = self.alias()?;
            return Ok(SelectItem::Resolve {
                column,
                function,
                alias,
            });
        }
        // Aggregate call? (name must be a known aggregate AND followed by `(`)
        if let Token::Ident(name) = self.peek() {
            let lower = name.to_ascii_lowercase();
            if AGGREGATES.contains(&lower.as_str())
                && self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen)
            {
                self.advance(); // name
                self.advance(); // (
                let column = if matches!(self.peek(), Token::Star) {
                    self.advance();
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect(&Token::RParen, "`)` closing aggregate")?;
                let alias = self.alias()?;
                return Ok(SelectItem::Aggregate {
                    function: lower,
                    column,
                    alias,
                });
            }
        }
        let name = self.column_ref()?;
        let alias = self.alias()?;
        Ok(SelectItem::Column { name, alias })
    }

    /// `max` | `choose('src')` | `mostrecent(Updated)` | `concat('; ')` …
    fn resolution_spec(&mut self) -> Result<ResolutionSpec> {
        let function = self.ident("resolution function name")?;
        let mut args = Vec::new();
        if matches!(self.peek(), Token::LParen) {
            self.advance();
            if !matches!(self.peek(), Token::RParen) {
                loop {
                    match self.advance() {
                        Token::Str(s) => args.push(s),
                        Token::Ident(s) => args.push(s),
                        Token::Int(i) => args.push(i.to_string()),
                        Token::Float(f) => args.push(f.to_string()),
                        other => {
                            return Err(self
                                .error(format!("expected resolution argument, found `{other}`")))
                        }
                    }
                    if matches!(self.peek(), Token::Comma) {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen, "`)` closing resolution arguments")?;
        }
        Ok(ResolutionSpec::with_args(function, args))
    }

    fn parse_from_clause(&mut self) -> Result<FromClause> {
        let fuse = if self.at_keyword("fuse") {
            self.advance();
            self.expect_keyword("from")?;
            true
        } else {
            self.expect_keyword("from")?;
            false
        };
        let mut tables = vec![self.ident("table name")?];
        while matches!(self.peek(), Token::Comma) {
            self.advance();
            tables.push(self.ident("table name")?);
        }
        Ok(FromClause { tables, fuse })
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.at_keyword("is") {
            self.advance();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        // [NOT] LIKE / IN
        let negated = self.at_keyword("not")
            && self
                .tokens
                .get(self.pos + 1)
                .map(|s| s.token.is_keyword("like") || s.token.is_keyword("in"))
                .unwrap_or(false);
        if negated {
            self.advance();
        }
        if self.at_keyword("like") {
            self.advance();
            let pattern = match self.advance() {
                Token::Str(s) => s,
                other => {
                    return Err(self.error(format!("expected pattern string, found `{other}`")))
                }
            };
            let e = Expr::Like(Box::new(left), pattern);
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.at_keyword("in") {
            self.advance();
            self.expect(&Token::LParen, "`(` after IN")?;
            let mut list = vec![self.additive()?];
            while matches!(self.peek(), Token::Comma) {
                self.advance();
                list.push(self.additive()?);
            }
            self.expect(&Token::RParen, "`)` closing IN list")?;
            let e = Expr::In(Box::new(left), list);
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if negated {
            return Err(self.error("expected LIKE or IN after NOT"));
        }
        // Comparison
        let op = match self.peek() {
            Token::Eq => Some(CmpOp::Eq),
            Token::Ne => Some(CmpOp::Ne),
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Slash => ArithOp::Div,
                Token::Percent => ArithOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Token::Minus) {
            self.advance();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.advance();
                Ok(Expr::lit(i))
            }
            Token::Float(f) => {
                self.advance();
                Ok(Expr::lit(f))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::lit(s.as_str()))
            }
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("null") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    self.advance();
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.advance();
                    return Ok(Expr::lit(false));
                }
                // Function call or column reference.
                if self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen) {
                    self.advance(); // name
                    self.advance(); // (
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Token::RParen) {
                        args.push(self.expr()?);
                        while matches!(self.peek(), Token::Comma) {
                            self.advance();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Token::RParen, "`)` closing function call")?;
                    return Ok(Expr::Call(name, args));
                }
                self.column_ref().map(Expr::Column)
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parses() {
        // Verbatim from §2.1.
        let q = parse(
            "SELECT Name, RESOLVE(Age, max)\n\
             FUSE FROM EE_Student, CS_Students\n\
             FUSE BY (Name)",
        )
        .unwrap();
        assert!(q.from.fuse);
        assert_eq!(q.from.tables, vec!["EE_Student", "CS_Students"]);
        assert_eq!(q.fuse_by, Some(vec!["Name".to_string()]));
        assert_eq!(q.select.len(), 2);
        match &q.select[1] {
            SelectItem::Resolve {
                column, function, ..
            } => {
                assert_eq!(column, "Age");
                assert_eq!(function.as_ref().unwrap().function, "max");
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn wildcard_and_default_resolve() {
        let q = parse("SELECT * FUSE FROM A, B FUSE BY (id)").unwrap();
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        let q2 = parse("SELECT RESOLVE(City) FUSE FROM A FUSE BY (id)").unwrap();
        match &q2.select[0] {
            SelectItem::Resolve { function, .. } => assert!(function.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resolution_function_with_args() {
        let q = parse(
            "SELECT RESOLVE(Price, choose('cheapstore')), RESOLVE(Title, mostrecent(Updated)) \
             FUSE FROM A, B FUSE BY (id)",
        )
        .unwrap();
        match &q.select[0] {
            SelectItem::Resolve {
                function: Some(f), ..
            } => {
                assert_eq!(f.function, "choose");
                assert_eq!(f.args, vec!["cheapstore"]);
            }
            other => panic!("{other:?}"),
        }
        match &q.select[1] {
            SelectItem::Resolve {
                function: Some(f), ..
            } => {
                assert_eq!(f.function, "mostrecent");
                assert_eq!(f.args, vec!["Updated"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_sql_with_group_by_and_aggregates() {
        let q = parse(
            "SELECT City, count(*) AS n, avg(Age) FROM People \
             WHERE Age > 18 GROUP BY City HAVING n > 2 ORDER BY n DESC, City",
        )
        .unwrap();
        assert!(!q.is_fusion());
        assert_eq!(q.group_by, vec!["City"]);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        match &q.select[1] {
            SelectItem::Aggregate {
                function,
                column,
                alias,
            } => {
                assert_eq!(function, "count");
                assert!(column.is_none());
                assert_eq!(alias.as_deref(), Some("n"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_with_fusion_and_having() {
        let q = parse(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM A, B \
             WHERE Age IS NOT NULL FUSE BY (Name) HAVING Age > 20 ORDER BY Name",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn expression_precedence() {
        let q = parse("SELECT * FROM T WHERE a + b * 2 > 10 AND NOT c = 'x' OR d IS NULL").unwrap();
        // OR is outermost.
        match q.where_clause.unwrap() {
            Expr::Or(_, _) => {}
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn like_in_between_tokens() {
        let q = parse(
            "SELECT * FROM T WHERE Name LIKE 'J%' AND City IN ('Berlin', 'Paris') AND x NOT LIKE '%z'",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn qualified_column_names() {
        let q = parse("SELECT A.Name FROM A, B WHERE A.id = B.id").unwrap();
        match &q.select[0] {
            SelectItem::Column { name, .. } => assert_eq!(name, "A.Name"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aliases() {
        let q = parse("SELECT Name AS n, RESOLVE(Age, max) AS oldest FROM T").unwrap();
        match &q.select[0] {
            SelectItem::Column { alias, .. } => assert_eq!(alias.as_deref(), Some("n")),
            other => panic!("{other:?}"),
        }
        match &q.select[1] {
            SelectItem::Resolve { alias, .. } => assert_eq!(alias.as_deref(), Some("oldest")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM T;").is_ok());
    }

    #[test]
    fn syntax_errors_carry_position() {
        let e = parse("SELECT FROM T").unwrap_err();
        match e {
            QueryError::Parse { position, .. } => assert!(position > 0),
            other => panic!("{other:?}"),
        }
        assert!(parse("SELECT * T").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM T WHERE").is_err());
        assert!(parse("SELECT * FROM T FUSE BY Name").is_err()); // missing parens
        assert!(parse("SELECT * FROM T extra junk").is_err());
    }

    #[test]
    fn fuse_by_multiple_columns() {
        let q = parse("SELECT * FUSE FROM A FUSE BY (Name, City)").unwrap();
        assert_eq!(
            q.fuse_by,
            Some(vec!["Name".to_string(), "City".to_string()])
        );
    }

    #[test]
    fn min_max_as_column_names_without_parens() {
        // `max` is only an aggregate when followed by `(`.
        let q = parse("SELECT max FROM T").unwrap();
        match &q.select[0] {
            SelectItem::Column { name, .. } => assert_eq!(name, "max"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_function_in_where() {
        let q = parse("SELECT * FROM T WHERE LOWER(Name) = 'bob'").unwrap();
        match q.where_clause.unwrap() {
            Expr::Cmp(CmpOp::Eq, l, _) => match *l {
                Expr::Call(name, _) => assert_eq!(name, "LOWER"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_numbers_and_arithmetic() {
        let q = parse("SELECT * FROM T WHERE x > -5 AND y % 2 = 0").unwrap();
        assert!(q.where_clause.is_some());
    }
}
