//! Error type for the Fuse By query layer.

use std::fmt;

/// Errors from parsing or executing Fuse By queries.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical error: unexpected character, unterminated literal, …
    Lex {
        /// Byte offset in the query text.
        position: usize,
        /// Description.
        message: String,
    },
    /// Syntax error with the offending token's position.
    Parse {
        /// Byte offset in the query text.
        position: usize,
        /// Description, including what was expected.
        message: String,
    },
    /// The query is well-formed but meaningless (unknown table, RESOLVE
    /// outside a fusion query, …).
    Semantic(String),
    /// A referenced table is not registered.
    UnknownTable(String),
    /// Engine failure during execution.
    Engine(hummer_engine::EngineError),
    /// Fusion failure during execution.
    Fusion(hummer_fusion::FusionError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lexical error at offset {position}: {message}")
            }
            QueryError::Parse { position, message } => {
                write!(f, "syntax error at offset {position}: {message}")
            }
            QueryError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            QueryError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            QueryError::Engine(e) => write!(f, "engine error: {e}"),
            QueryError::Fusion(e) => write!(f, "fusion error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Engine(e) => Some(e),
            QueryError::Fusion(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hummer_engine::EngineError> for QueryError {
    fn from(e: hummer_engine::EngineError) -> Self {
        QueryError::Engine(e)
    }
}

impl From<hummer_fusion::FusionError> for QueryError {
    fn from(e: hummer_fusion::FusionError) -> Self {
        QueryError::Fusion(e)
    }
}

/// Result alias for the query layer.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = QueryError::Parse {
            position: 17,
            message: "expected FROM".into(),
        };
        let s = e.to_string();
        assert!(s.contains("17"));
        assert!(s.contains("expected FROM"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e: QueryError = hummer_engine::EngineError::DuplicateColumn("x".into()).into();
        assert!(e.source().is_some());
    }
}
