//! The shard wire protocol: a length-checked binary frame over the engine
//! codec ([`hummer_engine::codec`]).
//!
//! JSON cannot carry the bit-identity contract — NaN payloads and `-0.0`
//! do not round-trip through decimal text — so shard requests and
//! responses reuse the engine's binary value codec, which writes floats as
//! raw `f64::to_bits`. A request carries the full integrated table (corpus
//! statistics must be global; see [`crate::exec`]), the job spec, the
//! shard batch, and (since frame v2) the caller's trace context; a
//! response carries one [`ShardPartial`] per shard, in request order, plus
//! the worker's recorded span subtree so the coordinator can stitch a
//! single cross-node trace.
//!
//! Version negotiation is fail-fast: a v1 peer reading a v2 frame (or the
//! reverse) answers the typed [`ShardError::VersionMismatch`] instead of
//! hanging or mis-decoding — the version byte sits at a fixed offset right
//! after the magic, before anything layout-dependent.

use crate::error::{Result, ShardError};
use crate::exec::{run_shards_local, ClusterPartial, JobSpec, ShardPartial};
use crate::plan::Shard;
use hummer_dupdetect::DuplicatePair;
use hummer_engine::codec::{
    read_table, read_value, write_table, write_value, ByteReader, ByteWriter,
};
use hummer_engine::{EngineError, ExecutionLayout, Table};
use hummer_fusion::{CellLineage, FunctionRegistry, ResolutionSpec, SampleConflict};
use hummer_obs::{Span, SpanRecord, Tracer};
use hummer_par::Parallelism;
use std::borrow::Cow;

/// Frame magic: `HmSh`.
pub const SHARD_WIRE_MAGIC: u32 = u32::from_be_bytes(*b"HmSh");
/// Protocol version; bumped on any layout change. v2 added the trace
/// context to requests and the span subtree to responses.
pub const SHARD_WIRE_VERSION: u8 = 2;

/// Span-ring capacity of the per-request capture tracer a worker records
/// remote-context stage spans into. A batch emits ~3 spans per shard plus
/// one root, so this never evicts at realistic fan-outs.
const WORKER_CAPTURE_CAPACITY: usize = 256;

fn wire(e: EngineError) -> ShardError {
    ShardError::Wire(e.to_string())
}

fn put_header(w: &mut ByteWriter) {
    w.put_u32(SHARD_WIRE_MAGIC);
    w.put_u8(SHARD_WIRE_VERSION);
}

fn get_header(r: &mut ByteReader) -> Result<()> {
    let magic = r.get_u32("shard frame magic").map_err(wire)?;
    if magic != SHARD_WIRE_MAGIC {
        return Err(ShardError::Wire(format!(
            "bad shard frame magic {magic:#010x}"
        )));
    }
    let version = r.get_u8("shard frame version").map_err(wire)?;
    if version != SHARD_WIRE_VERSION {
        return Err(ShardError::VersionMismatch {
            got: version,
            expected: SHARD_WIRE_VERSION,
        });
    }
    Ok(())
}

fn put_usize(w: &mut ByteWriter, n: usize) {
    w.put_u32(n as u32);
}

fn get_index(r: &mut ByteReader, bound: usize, what: &str) -> Result<usize> {
    let i = r.get_u32(what).map_err(wire)? as usize;
    if i >= bound {
        return Err(ShardError::Wire(format!(
            "{what} {i} out of range (< {bound})"
        )));
    }
    Ok(i)
}

fn put_strings(w: &mut ByteWriter, items: &[String]) {
    put_usize(w, items.len());
    for s in items {
        w.put_str(s);
    }
}

fn get_strings(r: &mut ByteReader, what: &str) -> Result<Vec<String>> {
    let n = r.get_count(4, what).map_err(wire)?;
    (0..n).map(|_| r.get_str(what).map_err(wire)).collect()
}

fn put_pairs(w: &mut ByteWriter, pairs: &[DuplicatePair]) {
    put_usize(w, pairs.len());
    for p in pairs {
        put_usize(w, p.left);
        put_usize(w, p.right);
        w.put_u64(p.similarity.to_bits());
    }
}

fn get_pairs(r: &mut ByteReader, rows: usize, what: &str) -> Result<Vec<DuplicatePair>> {
    let n = r.get_count(20, what).map_err(wire)?;
    (0..n)
        .map(|_| {
            let left = get_index(r, rows, "pair left row")?;
            let right = get_index(r, rows, "pair right row")?;
            let similarity = f64::from_bits(r.get_u64("pair similarity").map_err(wire)?);
            Ok(DuplicatePair {
                left,
                right,
                similarity,
            })
        })
        .collect()
}

fn layout_tag(layout: ExecutionLayout) -> u8 {
    match layout {
        ExecutionLayout::Row => 0,
        ExecutionLayout::Columnar => 1,
    }
}

fn layout_from_tag(tag: u8) -> Result<ExecutionLayout> {
    match tag {
        0 => Ok(ExecutionLayout::Row),
        1 => Ok(ExecutionLayout::Columnar),
        other => Err(ShardError::Wire(format!("unknown layout tag {other}"))),
    }
}

/// Encode a shard-execution request: the integrated table, the job spec,
/// the shard batch this worker is responsible for, and the caller's trace
/// context. `trace` is `(trace_id, parent_span_id)`; `None` (an untraced
/// coordinator) is wired as a pair of zeros — real ids start at 1.
pub fn encode_request(
    table: &Table,
    spec: &JobSpec,
    shards: &[Shard],
    trace: Option<(u64, u64)>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_header(&mut w);
    let (trace_id, parent_span) = trace.unwrap_or((0, 0));
    w.put_u64(trace_id);
    w.put_u64(parent_span);
    write_table(&mut w, table);
    put_strings(&mut w, &spec.attributes);
    w.put_u64(spec.threshold.to_bits());
    w.put_u64(spec.unsure_threshold.to_bits());
    w.put_u8(u8::from(spec.use_filter));
    w.put_u8(layout_tag(spec.layout));
    put_usize(&mut w, spec.resolutions.len());
    for (col, rspec) in &spec.resolutions {
        w.put_str(col);
        w.put_str(&rspec.function);
        put_strings(&mut w, &rspec.args);
    }
    put_usize(&mut w, shards.len());
    for shard in shards {
        put_usize(&mut w, shard.rows.len());
        for &row in &shard.rows {
            put_usize(&mut w, row);
        }
        put_usize(&mut w, shard.candidates.len());
        for &(a, b) in &shard.candidates {
            put_usize(&mut w, a);
            put_usize(&mut w, b);
        }
    }
    w.into_bytes()
}

/// A decoded shard-execution request: the shipped table, the job spec,
/// the shard list, and the caller's trace context (`trace_id`,
/// `parent_span_id`), `None` when the caller is untraced.
pub type DecodedRequest = (Table, JobSpec, Vec<Shard>, Option<(u64, u64)>);

/// Decode a shard-execution request; validates every row index against the
/// shipped table.
pub fn decode_request(bytes: &[u8]) -> Result<DecodedRequest> {
    let mut r = ByteReader::new(bytes);
    get_header(&mut r)?;
    let trace_id = r.get_u64("trace ctx trace id").map_err(wire)?;
    let parent_span = r.get_u64("trace ctx parent span").map_err(wire)?;
    let trace = (trace_id != 0).then_some((trace_id, parent_span));
    let table = read_table(&mut r).map_err(wire)?;
    let rows = table.len();
    let attributes = get_strings(&mut r, "job attributes")?;
    let threshold = f64::from_bits(r.get_u64("threshold").map_err(wire)?);
    let unsure_threshold = f64::from_bits(r.get_u64("unsure threshold").map_err(wire)?);
    let use_filter = r.get_u8("use_filter").map_err(wire)? != 0;
    let layout = layout_from_tag(r.get_u8("layout").map_err(wire)?)?;
    let n_res = r.get_count(6, "resolutions").map_err(wire)?;
    let mut resolutions = Vec::with_capacity(n_res);
    for _ in 0..n_res {
        let col = r.get_str("resolution column").map_err(wire)?.to_string();
        let function = r.get_str("resolution function").map_err(wire)?.to_string();
        let args = get_strings(&mut r, "resolution args")?;
        resolutions.push((col, ResolutionSpec { function, args }));
    }
    let spec = JobSpec {
        attributes,
        threshold,
        unsure_threshold,
        use_filter,
        layout,
        resolutions,
    };
    let n_shards = r.get_count(8, "shards").map_err(wire)?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let n_rows = r.get_count(4, "shard rows").map_err(wire)?;
        let rows_vec: Vec<usize> = (0..n_rows)
            .map(|_| get_index(&mut r, rows, "shard row"))
            .collect::<Result<_>>()?;
        let n_cand = r.get_count(8, "shard candidates").map_err(wire)?;
        let candidates: Vec<(usize, usize)> = (0..n_cand)
            .map(|_| {
                Ok((
                    get_index(&mut r, rows, "candidate left")?,
                    get_index(&mut r, rows, "candidate right")?,
                ))
            })
            .collect::<Result<_>>()?;
        shards.push(Shard {
            rows: rows_vec,
            candidates,
        });
    }
    r.expect_end("shard request").map_err(wire)?;
    Ok((table, spec, shards, trace))
}

fn put_span_records(w: &mut ByteWriter, spans: &[SpanRecord]) {
    put_usize(w, spans.len());
    for s in spans {
        w.put_u64(s.trace);
        w.put_u64(s.id);
        w.put_u8(u8::from(s.parent.is_some()));
        w.put_u64(s.parent.unwrap_or(0));
        w.put_str(&s.name);
        w.put_u64(s.start_us);
        w.put_u64(s.duration_us);
        w.put_u8(u8::from(s.node.is_some()));
        w.put_str(s.node.as_deref().unwrap_or(""));
        put_usize(w, s.counters.len());
        for (name, value) in &s.counters {
            w.put_str(name);
            w.put_u64(*value);
        }
    }
}

fn get_span_records(r: &mut ByteReader) -> Result<Vec<SpanRecord>> {
    let n = r.get_count(40, "response spans").map_err(wire)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let trace = r.get_u64("span trace").map_err(wire)?;
        let id = r.get_u64("span id").map_err(wire)?;
        let has_parent = r.get_u8("span parent flag").map_err(wire)? != 0;
        let parent_raw = r.get_u64("span parent").map_err(wire)?;
        let name = r.get_str("span name").map_err(wire)?.to_string();
        let start_us = r.get_u64("span start").map_err(wire)?;
        let duration_us = r.get_u64("span duration").map_err(wire)?;
        let has_node = r.get_u8("span node flag").map_err(wire)? != 0;
        let node = r.get_str("span node").map_err(wire)?.to_string();
        let n_counters = r.get_count(9, "span counters").map_err(wire)?;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let cname = r.get_str("counter name").map_err(wire)?.to_string();
            let value = r.get_u64("counter value").map_err(wire)?;
            counters.push((Cow::Owned(cname), value));
        }
        spans.push(SpanRecord {
            trace,
            id,
            parent: has_parent.then_some(parent_raw),
            name: Cow::Owned(name),
            start_us,
            duration_us,
            counters,
            node: has_node.then_some(node),
        });
    }
    Ok(spans)
}

fn put_cell(w: &mut ByteWriter, cell: &CellLineage) {
    put_usize(w, cell.row_indices.len());
    for &i in &cell.row_indices {
        put_usize(w, i);
    }
    put_strings(w, &cell.sources);
    w.put_u8(u8::from(cell.had_conflict));
}

fn get_cell(r: &mut ByteReader) -> Result<CellLineage> {
    let n = r.get_count(4, "lineage rows").map_err(wire)?;
    let row_indices = (0..n)
        .map(|_| r.get_u32("lineage row").map_err(wire).map(|v| v as usize))
        .collect::<Result<_>>()?;
    let sources = get_strings(r, "lineage sources")?;
    let had_conflict = r.get_u8("lineage conflict flag").map_err(wire)? != 0;
    Ok(CellLineage {
        row_indices,
        sources,
        had_conflict,
    })
}

fn put_sample(w: &mut ByteWriter, s: &SampleConflict) {
    put_usize(w, s.cluster);
    w.put_str(&s.column);
    put_strings(w, &s.values);
    w.put_str(&s.resolved);
}

fn get_sample(r: &mut ByteReader) -> Result<SampleConflict> {
    let cluster = r.get_u32("sample cluster").map_err(wire)? as usize;
    let column = r.get_str("sample column").map_err(wire)?.to_string();
    let values = get_strings(r, "sample values")?;
    let resolved = r.get_str("sample resolved").map_err(wire)?.to_string();
    Ok(SampleConflict {
        cluster,
        column,
        values,
        resolved,
    })
}

/// Encode a shard-execution response: one partial per requested shard, in
/// request order, followed by the worker's span subtree (empty when the
/// request carried no trace context).
pub fn encode_response(partials: &[ShardPartial], spans: &[SpanRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_header(&mut w);
    put_span_records(&mut w, spans);
    put_usize(&mut w, partials.len());
    for p in partials {
        w.put_u64(p.candidates as u64);
        w.put_u64(p.filtered_out as u64);
        w.put_u64(p.compared as u64);
        w.put_u64(p.memo_hits as u64);
        w.put_u64(p.conflict_count as u64);
        put_pairs(&mut w, &p.pairs);
        put_pairs(&mut w, &p.unsure);
        put_usize(&mut w, p.clusters.len());
        for c in &p.clusters {
            put_usize(&mut w, c.min_member);
            put_usize(&mut w, c.values.len());
            for v in &c.values {
                write_value(&mut w, v);
            }
            put_usize(&mut w, c.cells.len());
            for cell in &c.cells {
                put_cell(&mut w, cell);
            }
            put_usize(&mut w, c.samples.len());
            for s in &c.samples {
                put_sample(&mut w, s);
            }
        }
    }
    w.into_bytes()
}

/// Decode a shard-execution response. `rows` is the integrated table's row
/// count (bounds every global row index in the frame). The second element
/// is the worker's span subtree for trace stitching.
pub fn decode_response(bytes: &[u8], rows: usize) -> Result<(Vec<ShardPartial>, Vec<SpanRecord>)> {
    let mut r = ByteReader::new(bytes);
    get_header(&mut r)?;
    let spans = get_span_records(&mut r)?;
    let n = r.get_count(40, "partials").map_err(wire)?;
    let mut partials = Vec::with_capacity(n);
    for _ in 0..n {
        let candidates = r.get_u64("candidates").map_err(wire)? as usize;
        let filtered_out = r.get_u64("filtered_out").map_err(wire)? as usize;
        let compared = r.get_u64("compared").map_err(wire)? as usize;
        let memo_hits = r.get_u64("memo_hits").map_err(wire)? as usize;
        let conflict_count = r.get_u64("conflict_count").map_err(wire)? as usize;
        let pairs = get_pairs(&mut r, rows, "accepted pairs")?;
        let unsure = get_pairs(&mut r, rows, "unsure pairs")?;
        let n_clusters = r.get_count(12, "clusters").map_err(wire)?;
        let mut clusters = Vec::with_capacity(n_clusters);
        for _ in 0..n_clusters {
            let min_member = get_index(&mut r, rows, "cluster min member")?;
            let n_values = r.get_count(1, "cluster values").map_err(wire)?;
            let values = (0..n_values)
                .map(|_| read_value(&mut r).map_err(wire))
                .collect::<Result<_>>()?;
            let n_cells = r.get_count(6, "cluster cells").map_err(wire)?;
            let cells = (0..n_cells)
                .map(|_| get_cell(&mut r))
                .collect::<Result<_>>()?;
            let n_samples = r.get_count(12, "cluster samples").map_err(wire)?;
            let samples = (0..n_samples)
                .map(|_| get_sample(&mut r))
                .collect::<Result<_>>()?;
            clusters.push(ClusterPartial {
                min_member,
                values,
                cells,
                samples,
            });
        }
        partials.push(ShardPartial {
            candidates,
            pairs,
            unsure,
            filtered_out,
            compared,
            memo_hits,
            conflict_count,
            clusters,
        });
    }
    r.expect_end("shard response").map_err(wire)?;
    Ok((partials, spans))
}

/// Worker-side entry point: decode a request frame, execute its shard
/// batch locally, and encode the response frame. The serving layer mounts
/// this behind `POST /shard/execute`.
///
/// When the request carries a remote trace context, the batch runs under a
/// private capture tracer that adopts the caller's `(trace, parent)` ids,
/// and the recorded span subtree ships back in the response for the
/// coordinator to splice. Otherwise the batch records into `parent` (the
/// worker's own local trace, a no-op when its tracer is disabled) and the
/// response's span block is empty.
pub fn handle_shard_request(
    body: &[u8],
    registry: &FunctionRegistry,
    par: Parallelism,
    parent: &Span,
) -> Result<Vec<u8>> {
    let (table, spec, shards, trace) = decode_request(body)?;
    if let Some((trace_id, parent_span)) = trace {
        let capture = Tracer::with_capacity(WORKER_CAPTURE_CAPACITY);
        let partials = {
            let root = capture.adopt_remote(trace_id, parent_span, "worker_batch");
            run_shards_local(&table, &spec, &shards, registry, par, &root)?
        };
        let spans = capture.drain();
        Ok(encode_response(&partials, &spans))
    } else {
        let partials = run_shards_local(&table, &spec, &shards, registry, par, parent)?;
        Ok(encode_response(&partials, &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{table, Value};

    fn spec() -> JobSpec {
        JobSpec {
            attributes: vec!["Name".into(), "City".into()],
            threshold: 0.77,
            unsure_threshold: 0.6,
            use_filter: true,
            layout: ExecutionLayout::Columnar,
            resolutions: vec![(
                "City".into(),
                ResolutionSpec::with_args("vote", vec!["tie".into()]),
            )],
        }
    }

    #[test]
    fn request_roundtrip() {
        let t = table! {
            "Integrated" => ["Name", "City"];
            ["ann", "berlin"],
            ["ann", "berlin"],
            ["bob", "hamburg"],
        };
        let shards = vec![
            Shard {
                rows: vec![0, 1],
                candidates: vec![(0, 1)],
            },
            Shard {
                rows: vec![2],
                candidates: vec![],
            },
        ];
        let bytes = encode_request(&t, &spec(), &shards, Some((0xdead, 7)));
        let (t2, spec2, shards2, trace) = decode_request(&bytes).unwrap();
        assert_eq!(t2.rows(), t.rows());
        assert_eq!(t2.schema().names(), t.schema().names());
        assert_eq!(spec2, spec());
        assert_eq!(shards2, shards);
        assert_eq!(trace, Some((0xdead, 7)));

        let bytes = encode_request(&t, &spec(), &shards, None);
        let (_, _, _, trace) = decode_request(&bytes).unwrap();
        assert_eq!(trace, None);
    }

    #[test]
    fn response_roundtrip_preserves_float_bits() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234); // NaN payload
        let partial = ShardPartial {
            candidates: 3,
            pairs: vec![DuplicatePair {
                left: 0,
                right: 1,
                similarity: 0.91,
            }],
            unsure: vec![],
            filtered_out: 1,
            compared: 2,
            memo_hits: 5,
            conflict_count: 1,
            clusters: vec![ClusterPartial {
                min_member: 0,
                values: vec![Value::text("ann"), Value::Float(weird), Value::Float(-0.0)],
                cells: vec![CellLineage {
                    row_indices: vec![0, 1],
                    sources: vec!["A".into(), "B".into()],
                    had_conflict: true,
                }],
                samples: vec![SampleConflict {
                    cluster: 0,
                    column: "City".into(),
                    values: vec!["berlin".into(), "Berlin".into()],
                    resolved: "berlin".into(),
                }],
            }],
        };
        let bytes = encode_response(std::slice::from_ref(&partial), &[]);
        let (decoded, spans) = decode_response(&bytes, 2).unwrap();
        assert!(spans.is_empty());
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].memo_hits, 5);
        assert_eq!(decoded[0].pairs, partial.pairs);
        let vals = &decoded[0].clusters[0].values;
        match (&vals[1], &vals[2]) {
            (Value::Float(a), Value::Float(b)) => {
                assert_eq!(a.to_bits(), weird.to_bits());
                assert_eq!(b.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("float values did not round-trip: {other:?}"),
        }
    }

    #[test]
    fn span_subtree_roundtrips() {
        let spans = vec![
            SpanRecord {
                trace: 0xfeed,
                id: 9,
                parent: None,
                name: Cow::Borrowed("worker_batch"),
                start_us: 0,
                duration_us: 1234,
                counters: vec![(Cow::Borrowed("shards"), 2)],
                node: None,
            },
            SpanRecord {
                trace: 0xfeed,
                id: 10,
                parent: Some(9),
                name: Cow::Owned("score".to_string()),
                start_us: 17,
                duration_us: 900,
                counters: vec![(Cow::Borrowed("pairs"), 5), (Cow::Borrowed("compared"), 40)],
                node: Some("w1:9000".to_string()),
            },
        ];
        let bytes = encode_response(&[], &spans);
        let (partials, decoded) = decode_response(&bytes, 0).unwrap();
        assert!(partials.is_empty());
        assert_eq!(decoded, spans);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_response(&[], &[]);
        bytes[0] ^= 0xff;
        assert!(decode_response(&bytes, 0).is_err());
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = encode_response(&[], &[]);
        bytes[4] = 1; // version byte sits right after the 4-byte magic
        match decode_response(&bytes, 0) {
            Err(ShardError::VersionMismatch { got: 1, expected }) => {
                assert_eq!(expected, SHARD_WIRE_VERSION);
            }
            other => panic!("expected typed version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_row_rejected() {
        let t = table! {
            "Integrated" => ["Name"];
            ["ann"],
        };
        let shards = vec![Shard {
            rows: vec![0, 7],
            candidates: vec![],
        }];
        let bytes = encode_request(&t, &spec(), &shards, None);
        assert!(decode_request(&bytes).is_err());
    }
}
