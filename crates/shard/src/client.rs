//! The coordinator side of scatter-gather: ship shard batches to remote
//! workers over HTTP, with per-worker timeouts, one retry on a distinct
//! worker, and graceful fallback to local execution.
//!
//! ## Failure semantics
//!
//! Shards are assigned round-robin: worker *w* receives shards *w*,
//! *w+W*, *w+2W*, … as one request. When a request fails (connect error,
//! timeout, non-200, undecodable or short response) the batch is retried
//! once on the next distinct worker. If that also fails and
//! [`CoordinatorConfig::fallback_local`] is set (the default), the batch
//! runs in-process — the answer is still exact, only slower. With fallback
//! disabled the scatter surfaces [`ShardError::Worker`] naming the worker
//! that failed *first*, so the serving layer can report the culprit.

use crate::error::{Result, ShardError};
use crate::exec::{
    run_shards_local, JobSpec, ScatterStats, ShardBackend, ShardPartial, WorkerCall,
};
use crate::plan::Shard;
use crate::wire::{decode_response, encode_request};
use hummer_engine::Table;
use hummer_fusion::FunctionRegistry;
use hummer_obs::Span;
use hummer_par::{par_map, Parallelism};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker addresses (`host:port`). Empty means run everything locally.
    pub workers: Vec<String>,
    /// Per-request timeout (connect + send + receive each bounded by it).
    pub timeout: Duration,
    /// Run failed batches in-process instead of failing the query.
    pub fallback_local: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            workers: Vec::new(),
            timeout: Duration::from_secs(30),
            fallback_local: true,
        }
    }
}

/// A [`ShardBackend`] that scatters shard batches to remote workers.
#[derive(Debug, Clone, Default)]
pub struct RemoteBackend {
    /// Worker set and failure policy.
    pub config: CoordinatorConfig,
}

impl RemoteBackend {
    /// Build a backend over the given configuration.
    pub fn new(config: CoordinatorConfig) -> Self {
        RemoteBackend { config }
    }
}

/// One worker attempt's failure: rendered cause plus whether it was a
/// timeout (drives the 502-vs-504 mapping at the server).
#[derive(Debug, Clone)]
struct AttemptError {
    cause: String,
    timeout: bool,
}

fn io_attempt_error(context: &str, e: &std::io::Error) -> AttemptError {
    AttemptError {
        cause: format!("{context}: {e}"),
        timeout: matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
    }
}

/// POST `body` to `http://{addr}/shard/execute` and return the response
/// body. Std-only HTTP/1.1 with `Connection: close`, mirroring the server's
/// hand-rolled parser. `trace` is the caller's `(trace_id, parent_span_id)`
/// context, mirrored as an `X-Hummer-Trace-Context` header so proxies and
/// packet captures can correlate the wire-frame context without decoding it.
fn post_shard_execute(
    addr: &str,
    body: &[u8],
    timeout: Duration,
    trace: Option<(u64, u64)>,
) -> std::result::Result<Vec<u8>, AttemptError> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| io_attempt_error("resolve", &e))?
        .next()
        .ok_or_else(|| AttemptError {
            cause: "resolve: no address".to_string(),
            timeout: false,
        })?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)
        .map_err(|e| io_attempt_error("connect", &e))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| io_attempt_error("configure socket", &e))?;

    let trace_header = trace
        .map(|(t, s)| format!("X-Hummer-Trace-Context: {t:016x}-{s:016x}\r\n"))
        .unwrap_or_default();
    let head = format!(
        "POST /shard/execute HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| io_attempt_error("send request", &e))?;

    // Read the whole response (Connection: close → until EOF), bounded by
    // the socket timeouts.
    let mut raw = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => return Err(io_attempt_error("read response", &e)),
        }
    }

    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| AttemptError {
            cause: "malformed response: missing header terminator".to_string(),
            timeout: false,
        })?;
    let head_text = String::from_utf8_lossy(&raw[..header_end]);
    let status_line = head_text.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| AttemptError {
            cause: format!("malformed status line: {status_line:?}"),
            timeout: false,
        })?;
    let mut resp_body = raw[header_end + 4..].to_vec();
    // Honor Content-Length when present (trailing bytes should not exist
    // with Connection: close, but be strict about the declared length).
    for line in head_text.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                if let Ok(len) = value.trim().parse::<usize>() {
                    if resp_body.len() < len {
                        return Err(AttemptError {
                            cause: format!(
                                "truncated response body: {} of {len} bytes",
                                resp_body.len()
                            ),
                            timeout: false,
                        });
                    }
                    resp_body.truncate(len);
                }
            }
        }
    }
    if status != 200 {
        let snippet: String = String::from_utf8_lossy(&resp_body)
            .chars()
            .take(200)
            .collect();
        return Err(AttemptError {
            cause: format!("worker answered {status}: {snippet}"),
            timeout: status == 504,
        });
    }
    Ok(resp_body)
}

/// What one shard batch's scatter produced.
struct GroupOutcome {
    partials: Vec<ShardPartial>,
    calls: Vec<WorkerCall>,
    requests: usize,
    retries: usize,
    fallbacks: usize,
    error: Option<ShardError>,
}

impl RemoteBackend {
    #[allow(clippy::too_many_arguments)]
    fn run_group(
        &self,
        table: &Table,
        spec: &JobSpec,
        group: &[Shard],
        primary: usize,
        registry: &FunctionRegistry,
        par: Parallelism,
        parent: &Span,
    ) -> GroupOutcome {
        let mut outcome = GroupOutcome {
            partials: Vec::new(),
            calls: Vec::new(),
            requests: 0,
            retries: 0,
            fallbacks: 0,
            error: None,
        };
        // The scatter span's ids travel in the wire frame and the trace
        // header; the worker's span subtree re-parents onto them.
        let trace = parent.trace_id().zip(parent.span_id());
        let body = encode_request(table, spec, group, trace);
        let workers = &self.config.workers;
        let mut first_failure: Option<(String, AttemptError)> = None;

        // Primary attempt, then one retry on the next distinct worker.
        let mut targets = vec![primary % workers.len()];
        if workers.len() > 1 {
            targets.push((primary + 1) % workers.len());
        }
        for (attempt, &wi) in targets.iter().enumerate() {
            let worker = &workers[wi];
            outcome.requests += 1;
            if attempt > 0 {
                outcome.retries += 1;
            }
            let mut call_span = parent.child(if attempt > 0 { "retry" } else { "worker_call" });
            call_span.set_node(worker.clone());
            call_span.count("shards", group.len() as u64);
            let t0 = Instant::now();
            let result =
                post_shard_execute(worker, &body, self.config.timeout, trace).and_then(|bytes| {
                    decode_response(&bytes, table.len()).map_err(|e| AttemptError {
                        cause: format!("undecodable response: {e}"),
                        timeout: false,
                    })
                });
            let latency = t0.elapsed();
            match result {
                Ok((partials, spans)) if partials.len() == group.len() => {
                    call_span.splice_remote(worker, &spans);
                    outcome.calls.push(WorkerCall {
                        worker: worker.clone(),
                        latency,
                        ok: true,
                    });
                    outcome.partials = partials;
                    return outcome;
                }
                Ok((partials, _)) => {
                    call_span.count("short_response", 1);
                    outcome.calls.push(WorkerCall {
                        worker: worker.clone(),
                        latency,
                        ok: false,
                    });
                    first_failure.get_or_insert((
                        worker.clone(),
                        AttemptError {
                            cause: format!(
                                "short response: {} partials for {} shards",
                                partials.len(),
                                group.len()
                            ),
                            timeout: false,
                        },
                    ));
                }
                Err(e) => {
                    call_span.count("failed", 1);
                    outcome.calls.push(WorkerCall {
                        worker: worker.clone(),
                        latency,
                        ok: false,
                    });
                    first_failure.get_or_insert((worker.clone(), e));
                }
            }
        }

        let (worker, error) = first_failure.expect("at least one attempt ran");
        if self.config.fallback_local {
            outcome.fallbacks += 1;
            let fb_span = parent.child("fallback");
            match run_shards_local(table, spec, group, registry, par, &fb_span) {
                Ok(partials) => outcome.partials = partials,
                Err(e) => outcome.error = Some(e),
            }
        } else {
            outcome.error = Some(ShardError::Worker {
                worker,
                cause: error.cause,
                timeout: error.timeout,
            });
        }
        outcome
    }
}

impl ShardBackend for RemoteBackend {
    fn scatter(
        &self,
        table: &Table,
        spec: &JobSpec,
        shards: &[Shard],
        registry: &FunctionRegistry,
        par: Parallelism,
        parent: &Span,
    ) -> Result<(Vec<ShardPartial>, ScatterStats)> {
        if self.config.workers.is_empty() || shards.is_empty() {
            let partials = run_shards_local(table, spec, shards, registry, par, parent)?;
            let stats = ScatterStats {
                shards: shards.len(),
                ..Default::default()
            };
            return Ok((partials, stats));
        }

        // Round-robin shard batches, one request per involved worker.
        let n_workers = self.config.workers.len();
        let n_groups = n_workers.min(shards.len());
        let mut groups: Vec<Vec<Shard>> = vec![Vec::new(); n_groups];
        for (i, shard) in shards.iter().enumerate() {
            groups[i % n_groups].push(shard.clone());
        }

        let indices: Vec<usize> = (0..groups.len()).collect();
        let fanout = Parallelism::degree(groups.len());
        let outcomes = par_map(fanout, &indices, |&gi| {
            self.run_group(table, spec, &groups[gi], gi, registry, par, parent)
        });

        let mut partials = Vec::with_capacity(shards.len());
        let mut stats = ScatterStats {
            shards: shards.len(),
            ..Default::default()
        };
        let mut error = None;
        for outcome in outcomes {
            stats.requests += outcome.requests;
            stats.retries += outcome.retries;
            stats.fallbacks += outcome.fallbacks;
            stats.worker_calls.extend(outcome.calls);
            if let Some(e) = outcome.error {
                error.get_or_insert(e);
            }
            partials.extend(outcome.partials);
        }
        match error {
            Some(e) => Err(e),
            None => Ok((partials, stats)),
        }
    }
}
