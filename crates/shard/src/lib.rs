//! # hummer-shard — sharded scatter-gather fusion
//!
//! A two-tier worker/combiner executor over the HumMer pipeline: partition
//! the integrated (outer-union) row space by blocking key into K disjoint
//! shards, run detection + clustering + fusion per shard on independent
//! workers — in-process or over HTTP — and merge the partial fused views
//! deterministically into the **exact byte-identical output** of the
//! single-shard pipeline, at every shard count × parallelism degree.
//!
//! * [`plan`] — the [`ShardPlanner`](plan::plan_shards): candidate-graph
//!   connected components packed into at most K bins, so rows that
//!   co-occur in any candidate pair (and hence any duplicate cluster)
//!   always land in the same shard;
//! * [`exec`] — the worker kernel ([`run_shard`]) and the end-to-end
//!   executor ([`execute_sharded`]); workers score their shard's candidate
//!   pairs against the *full-table* corpus statistics, which is what makes
//!   per-shard similarities bit-equal to the global detector's;
//! * [`combine`] — the deterministic merge: canonical pair re-sort, global
//!   re-closure, fused rows ordered by each cluster's smallest member, and
//!   conflict samples re-capped in global order;
//! * [`wire`] — the binary shard protocol over the engine codec (floats
//!   ship as raw bits, so NaN payloads and `-0.0` survive the network);
//! * [`client`] — the coordinator's [`RemoteBackend`]: round-robin
//!   scatter, per-worker timeout, retry-once on a distinct worker, and
//!   graceful fallback to local execution.
//!
//! ## Example
//!
//! ```
//! use hummer_core::HummerConfig;
//! use hummer_engine::table;
//! use hummer_fusion::FunctionRegistry;
//! use hummer_shard::{execute_sharded, key_equality_spec};
//!
//! let people = table! {
//!     "People" => ["Name", "City"];
//!     ["John Smith", "Berlin"],
//!     ["Jon Smith",  "Berlin"],
//!     ["Mary Jones", "Hamburg"],
//! };
//! let mut config = HummerConfig::default();
//! config.detector.threshold = 0.7;
//! config.detector.unsure_threshold = 0.55;
//! // Disjoint blocking gives the planner components to distribute.
//! config.detector.candidates = key_equality_spec("City");
//! let registry = FunctionRegistry::standard();
//!
//! let sharded = execute_sharded(&[&people], &config, 4, &[], &registry).unwrap();
//! assert_eq!(sharded.outcome.result.len(), 2); // the Smiths fused
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod combine;
pub mod error;
pub mod exec;
pub mod plan;
pub mod wire;

pub use client::{CoordinatorConfig, RemoteBackend};
pub use combine::{combine_partials, Combined};
pub use error::{Result, ShardError};
pub use exec::{
    execute_sharded, execute_sharded_with, run_shard, run_shards_local, ClusterPartial, JobSpec,
    LocalBackend, ScatterStats, ShardBackend, ShardPartial, ShardedOutcome, WorkerCall,
};
pub use plan::{key_equality_spec, plan_shards, Shard, ShardPlan};
pub use wire::{
    decode_request, decode_response, encode_request, encode_response, handle_shard_request,
    SHARD_WIRE_MAGIC, SHARD_WIRE_VERSION,
};
