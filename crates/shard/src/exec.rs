//! The shard executor: the per-shard worker kernel, the pluggable scatter
//! backend, and the end-to-end sharded pipeline.
//!
//! ## Why per-shard output is bit-identical
//!
//! The worker scores its shard's candidate pairs with
//! [`hummer_dupdetect::score_candidates`] against the **full integrated
//! table and its corpus-wide similarity statistics** — only the pair list
//! is shard-local. A pair therefore scores to the exact same bits it would
//! in the single-shard detector. Clusters (transitive closures over
//! accepted pairs) never cross shards by the planner's co-occurrence
//! invariant, so the per-shard union-find finds exactly the global
//! clusters restricted to the shard, and per-shard fusion — over a
//! shard-local table with the global name and schema — resolves each
//! cluster from exactly the member rows the global fusion would.
//!
//! Schema matching and transformation run **once, globally**: DUMAS
//! matching is instance-based, so per-shard matching could diverge. Only
//! detection, clustering, and fusion fan out.

use crate::combine::combine_partials;
use crate::error::{Result, ShardError};
use crate::plan::{plan_shards, Shard};
use hummer_core::{HummerConfig, PipelineOutcome, PreparedSources, StageTimings};
use hummer_dupdetect::{
    annotate_object_ids, score_candidates, sort_pairs_canonical, CandidateSpec, DetectionResult,
    DetectorConfig, DuplicatePair, HeuristicConfig, TupleSimilarity, UnionFind, OBJECT_ID_COLUMN,
};
use hummer_engine::{ExecutionLayout, Row, Table, Value};
use hummer_fusion::{
    fuse, CellLineage, FunctionRegistry, FusionSpec, ResolutionSpec, SampleConflict,
};
use hummer_matching::{integrate_with_layout, match_star_par, SOURCE_ID_COLUMN};
use hummer_obs::Span;
use hummer_par::Parallelism;
use std::time::{Duration, Instant};

/// Everything a worker needs to execute shards besides the table and the
/// shard list: the resolved detector scalars and the query's resolution
/// functions. Attribute names are pre-resolved by the coordinator so
/// workers never re-run the selection heuristics.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Comparison attributes, in resolution order.
    pub attributes: Vec<String>,
    /// Duplicate threshold.
    pub threshold: f64,
    /// Unsure-band lower threshold.
    pub unsure_threshold: f64,
    /// Whether the upper-bound filter applies.
    pub use_filter: bool,
    /// Physical layout of pair scoring.
    pub layout: ExecutionLayout,
    /// Per-column resolution functions (possibly empty — plain `COALESCE`
    /// fusion then applies, exactly as in the unsharded pipeline).
    pub resolutions: Vec<(String, ResolutionSpec)>,
}

impl JobSpec {
    /// The detector configuration a worker scores under. The candidate
    /// spec is irrelevant (workers receive pre-generated pair lists) and
    /// pinned to `AllPairs`.
    pub fn detector_config(&self) -> DetectorConfig {
        DetectorConfig {
            attributes: Some(self.attributes.clone()),
            heuristics: HeuristicConfig::default(),
            candidates: CandidateSpec::AllPairs,
            threshold: self.threshold,
            unsure_threshold: self.unsure_threshold,
            use_filter: self.use_filter,
            layout: self.layout,
        }
    }
}

/// One fused cluster as a worker ships it: the global smallest member (the
/// combiner's merge key), the fused row, per-cell lineage in **global** row
/// indices, and the cluster's conflict samples in column order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPartial {
    /// Smallest global row index of the cluster — unique across shards,
    /// and ascending in exactly the global fusion's first-appearance order.
    pub min_member: usize,
    /// The fused row's values (output schema order).
    pub values: Vec<Value>,
    /// Per-cell lineage, `row_indices` remapped shard-local → global.
    pub cells: Vec<CellLineage>,
    /// Conflict samples for this cluster (the `cluster` field still holds
    /// the shard-local cluster index; the combiner rewrites it).
    pub samples: Vec<SampleConflict>,
}

/// Everything one shard's worker produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardPartial {
    /// Candidate pairs this shard was assigned.
    pub candidates: usize,
    /// Accepted pairs (global row indices), canonical order.
    pub pairs: Vec<DuplicatePair>,
    /// Unsure pairs (global row indices), canonical order.
    pub unsure: Vec<DuplicatePair>,
    /// Candidates discarded by the upper-bound filter.
    pub filtered_out: usize,
    /// Full similarity evaluations performed.
    pub compared: usize,
    /// Edit-distance memo hits (excluded from the bit-identity contract,
    /// like [`hummer_dupdetect::DetectionStats::memo_hits`]).
    pub memo_hits: usize,
    /// Cell-level conflicts resolved by this shard's fusion.
    pub conflict_count: usize,
    /// Fused clusters in shard-local first-appearance order (ascending
    /// `min_member`).
    pub clusters: Vec<ClusterPartial>,
}

/// Run one shard end to end: score its candidate pairs against the full
/// table's `measure`, form the shard-local transitive closure, fuse, and
/// package the partial for the combiner. Records a `shard` span with
/// `score` and `cluster` stage children under `parent` — on a worker
/// serving a remote-traced request these are the spans that ship back to
/// the coordinator.
#[allow(clippy::too_many_arguments)]
pub fn run_shard(
    table: &Table,
    measure: &TupleSimilarity,
    cfg: &DetectorConfig,
    shard: &Shard,
    resolutions: &[(String, ResolutionSpec)],
    registry: &FunctionRegistry,
    par: Parallelism,
    parent: &Span,
) -> Result<ShardPartial> {
    let mut shard_span = parent.child("shard");
    shard_span.count("rows", shard.rows.len() as u64);

    // 1. Score: full-table corpus statistics, shard-local pair list.
    let mut span = shard_span.child("score");
    let scored = score_candidates(table, measure, cfg, &shard.candidates, par);
    let mut pairs = scored.pairs;
    let mut unsure = scored.unsure;
    sort_pairs_canonical(&mut pairs);
    sort_pairs_canonical(&mut unsure);
    span.count("candidates", shard.candidates.len() as u64);
    span.count("compared", scored.compared as u64);
    span.count("filtered_out", scored.filtered_out as u64);
    span.count("pairs", pairs.len() as u64);
    drop(span);

    let mut cluster_span = shard_span.child("cluster");

    // 2. Transitive closure within the shard (pairs never leave it).
    let local_of = |g: usize| -> Result<usize> {
        shard
            .rows
            .binary_search(&g)
            .map_err(|_| ShardError::Wire(format!("candidate row {g} outside its shard")))
    };
    let mut uf = UnionFind::new(shard.rows.len());
    for p in &pairs {
        uf.union(local_of(p.left)?, local_of(p.right)?);
    }
    let cluster_ids = uf.cluster_ids();
    let clusters = uf.clusters();

    // 3. Shard-local annotated table: the shard's rows in global order,
    // under the global table name and schema, with a dense local objectID
    // — resolution functions see exactly the context the global fusion
    // would give them.
    let rows: Vec<Row> = shard
        .rows
        .iter()
        .map(|&r| table.rows()[r].clone())
        .collect();
    let local = Table::new(table.name(), table.schema().clone(), rows)?;
    let detection = DetectionResult {
        pairs: Vec::new(),
        unsure: Vec::new(),
        cluster_ids,
        clusters: clusters.clone(),
        stats: Default::default(),
        attributes_used: Vec::new(),
    };
    let annotated = annotate_object_ids(&local, &detection)?;

    // 4. Fuse with the same spec shape as `fuse_prepared`.
    let mut fspec = FusionSpec::by_key(vec![OBJECT_ID_COLUMN])
        .drop_column(OBJECT_ID_COLUMN)
        .drop_column(SOURCE_ID_COLUMN)
        .with_parallelism(par);
    for (col, rspec) in resolutions {
        fspec = fspec.resolve(col.clone(), rspec.clone());
    }
    let fused = fuse(&annotated, &fspec, registry)?;
    debug_assert_eq!(fused.table.len(), clusters.len());

    // 5. Package: remap lineage to global rows, tag clusters with their
    // global smallest member, group samples per cluster.
    let ncols = fused.table.schema().len();
    let mut cluster_partials: Vec<ClusterPartial> = fused
        .table
        .rows()
        .iter()
        .enumerate()
        .map(|(ci, row)| {
            let cells = (0..ncols)
                .map(|c| {
                    let mut cell = fused.lineage.cell(ci, c).clone();
                    cell.row_indices = cell.row_indices.iter().map(|&l| shard.rows[l]).collect();
                    cell
                })
                .collect();
            ClusterPartial {
                min_member: shard.rows[clusters[ci][0]],
                values: row.values().to_vec(),
                cells,
                samples: Vec::new(),
            }
        })
        .collect();
    for sample in fused.sample_conflicts {
        cluster_partials[sample.cluster].samples.push(sample);
    }

    cluster_span.count("clusters", clusters.len() as u64);
    cluster_span.count("conflicts", fused.conflict_count as u64);
    drop(cluster_span);

    Ok(ShardPartial {
        candidates: shard.candidates.len(),
        pairs,
        unsure,
        filtered_out: scored.filtered_out,
        compared: scored.compared,
        memo_hits: scored.memo_hits,
        conflict_count: fused.conflict_count,
        clusters: cluster_partials,
    })
}

/// How often a scatter touched workers, retried, and fell back — the
/// coordinator's observability payload (all zeros for the local backend).
#[derive(Debug, Clone, Default)]
pub struct ScatterStats {
    /// Shards executed.
    pub shards: usize,
    /// Worker HTTP requests attempted (including retries).
    pub requests: usize,
    /// Requests that were retried on a distinct worker.
    pub retries: usize,
    /// Shard batches that fell back to local execution.
    pub fallbacks: usize,
    /// One entry per worker request, for per-worker latency metrics.
    pub worker_calls: Vec<WorkerCall>,
}

/// One worker request's outcome.
#[derive(Debug, Clone)]
pub struct WorkerCall {
    /// Worker address.
    pub worker: String,
    /// Wall-clock time of the request.
    pub latency: Duration,
    /// Whether the request produced usable partials.
    pub ok: bool,
}

/// Where shard batches execute: in-process ([`LocalBackend`]) or scattered
/// over HTTP to remote workers ([`crate::client::RemoteBackend`]).
pub trait ShardBackend {
    /// Execute every shard and return their partials (any order — the
    /// combiner's merge is order-insensitive) plus scatter statistics.
    /// Execution spans (per-shard stages locally, `worker_call` / `retry`
    /// / `fallback` remotely) nest under `parent`.
    fn scatter(
        &self,
        table: &Table,
        spec: &JobSpec,
        shards: &[Shard],
        registry: &FunctionRegistry,
        par: Parallelism,
        parent: &Span,
    ) -> Result<(Vec<ShardPartial>, ScatterStats)>;
}

/// Run every shard in-process, sequentially, each with `par` threads of
/// intra-shard parallelism.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalBackend;

/// Execute `shards` in-process against `table`: build the full-table
/// measure once, then run each shard. Shared by [`LocalBackend`], the
/// worker-side HTTP handler, and the coordinator's fallback path.
pub fn run_shards_local(
    table: &Table,
    spec: &JobSpec,
    shards: &[Shard],
    registry: &FunctionRegistry,
    par: Parallelism,
    parent: &Span,
) -> Result<Vec<ShardPartial>> {
    let cfg = spec.detector_config();
    let attrs: Vec<usize> = spec
        .attributes
        .iter()
        .map(|n| table.resolve(n))
        .collect::<std::result::Result<_, _>>()?;
    let measure = TupleSimilarity::new(table, attrs);
    shards
        .iter()
        .map(|s| {
            run_shard(
                table,
                &measure,
                &cfg,
                s,
                &spec.resolutions,
                registry,
                par,
                parent,
            )
        })
        .collect()
}

impl ShardBackend for LocalBackend {
    fn scatter(
        &self,
        table: &Table,
        spec: &JobSpec,
        shards: &[Shard],
        registry: &FunctionRegistry,
        par: Parallelism,
        parent: &Span,
    ) -> Result<(Vec<ShardPartial>, ScatterStats)> {
        let partials = run_shards_local(table, spec, shards, registry, par, parent)?;
        let stats = ScatterStats {
            shards: shards.len(),
            ..Default::default()
        };
        Ok((partials, stats))
    }
}

/// The sharded pipeline's complete output.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Bit-identical to `prepare_tables` + `fuse_prepared_par` over the
    /// same tables and configuration (modulo `detection.stats.memo_hits`
    /// and wall-clock timings).
    pub outcome: PipelineOutcome,
    /// The preparation artifacts (for a serving layer's prepared cache).
    pub prepared: PreparedSources,
    /// Shards the plan produced.
    pub shards: usize,
    /// Candidate-graph components the plan packed.
    pub components: usize,
    /// Scatter statistics from the backend.
    pub stats: ScatterStats,
}

/// Run the full sharded pipeline in-process: match + transform globally,
/// plan at most `k` shards, execute them locally, and combine.
pub fn execute_sharded(
    tables: &[&Table],
    config: &HummerConfig,
    k: usize,
    resolutions: &[(String, ResolutionSpec)],
    registry: &FunctionRegistry,
) -> Result<ShardedOutcome> {
    execute_sharded_with(
        tables,
        config,
        k,
        resolutions,
        registry,
        &LocalBackend,
        &Span::noop(),
    )
}

/// [`execute_sharded`] with an explicit backend and parent span. Stage
/// spans (`match`, `transform`, `plan`, `scatter`, `combine`) nest under
/// `parent`.
pub fn execute_sharded_with(
    tables: &[&Table],
    config: &HummerConfig,
    k: usize,
    resolutions: &[(String, ResolutionSpec)],
    registry: &FunctionRegistry,
    backend: &dyn ShardBackend,
    parent: &Span,
) -> Result<ShardedOutcome> {
    let mut timings = StageTimings::default();

    // Global stages: matching and transformation (see module docs).
    let mut span = parent.child("match");
    let t0 = Instant::now();
    let match_results = match_star_par(tables, &config.matcher, config.parallelism);
    timings.matching = t0.elapsed();
    span.count("tables", tables.len() as u64);
    drop(span);

    let mut span = parent.child("transform");
    let t0 = Instant::now();
    let integrated = integrate_with_layout(tables, &match_results, "Integrated", config.layout)?;
    timings.transformation = t0.elapsed();
    span.count("union_rows", integrated.len() as u64);
    drop(span);

    let cfg = config.detector_config();
    let attrs = hummer_dupdetect::resolve_attributes(&integrated, &cfg)?;
    let attributes: Vec<String> = attrs
        .iter()
        .map(|&i| integrated.schema().column(i).name.clone())
        .collect();

    let t0 = Instant::now();
    let mut span = parent.child("plan");
    let plan = plan_shards(&integrated, &cfg, k)?;
    span.count("shards", plan.shards.len() as u64);
    span.count("components", plan.components as u64);
    span.count("candidates", plan.candidates as u64);
    drop(span);

    let spec = JobSpec {
        attributes: attributes.clone(),
        threshold: cfg.threshold,
        unsure_threshold: cfg.unsure_threshold,
        use_filter: cfg.use_filter,
        layout: cfg.layout,
        resolutions: resolutions.to_vec(),
    };

    let mut span = parent.child("scatter");
    let (partials, mut stats) = backend.scatter(
        &integrated,
        &spec,
        &plan.shards,
        registry,
        config.parallelism,
        &span,
    )?;
    stats.shards = plan.shards.len();
    span.count("shards", plan.shards.len() as u64);
    span.count("requests", stats.requests as u64);
    span.count("retries", stats.retries as u64);
    span.count("fallbacks", stats.fallbacks as u64);
    drop(span);
    timings.detection = t0.elapsed();

    let t0 = Instant::now();
    let mut span = parent.child("combine");
    let combined = combine_partials(&integrated, attributes, partials)?;
    timings.fusion = t0.elapsed();
    span.count("clusters", combined.detection.object_count() as u64);
    span.count("fused_rows", combined.table.len() as u64);
    span.count("conflicts", combined.conflict_count as u64);
    drop(span);

    let prepared = PreparedSources {
        match_results: match_results.clone(),
        integrated: integrated.clone(),
        detection: combined.detection.clone(),
        annotated: combined.annotated,
        timings: StageTimings {
            fusion: Duration::ZERO,
            ..timings
        },
    };
    let outcome = PipelineOutcome {
        result: combined.table,
        lineage: combined.lineage,
        sample_conflicts: combined.sample_conflicts,
        conflict_count: combined.conflict_count,
        match_results,
        integrated,
        detection: combined.detection,
        timings,
    };
    Ok(ShardedOutcome {
        outcome,
        prepared,
        shards: plan.shards.len(),
        components: plan.components,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::key_equality_spec;
    use hummer_core::{fuse_prepared_par, prepare_tables};
    use hummer_datagen::scenarios::person_scale;
    use hummer_fusion::ResolutionSpec;

    fn fingerprint(out: &PipelineOutcome) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}",
            out.result.rows(),
            out.result.schema().names(),
            out.detection.cluster_ids,
            out.detection.pairs,
            out.detection.unsure,
            out.conflict_count,
            out.sample_conflicts,
        )
    }

    #[test]
    fn sharded_matches_single_shard_bitwise() {
        let world = person_scale(30, 7);
        let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let mut config = HummerConfig::default();
        config.detector.candidates = key_equality_spec("Name");
        config.parallelism = Parallelism::degree(2);
        let registry = FunctionRegistry::standard();
        let resolutions = [("Name".to_string(), ResolutionSpec::named("longest"))];

        let prepared = prepare_tables(&tables, &config).unwrap();
        let reference =
            fuse_prepared_par(&prepared, &resolutions, &registry, config.parallelism).unwrap();

        for k in [1usize, 2, 4, 8] {
            let sharded = execute_sharded(&tables, &config, k, &resolutions, &registry).unwrap();
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&sharded.outcome),
                "k={k}"
            );
            assert_eq!(
                prepared.annotated.rows(),
                sharded.prepared.annotated.rows(),
                "annotated rows diverged at k={k}"
            );
            assert!(sharded.shards <= k);
        }
    }

    #[test]
    fn local_backend_reports_shard_count() {
        let world = person_scale(12, 3);
        let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let mut config = HummerConfig::default();
        config.detector.candidates = key_equality_spec("Name");
        let registry = FunctionRegistry::standard();
        let sharded = execute_sharded(&tables, &config, 4, &[], &registry).unwrap();
        assert_eq!(sharded.stats.shards, sharded.shards);
        assert_eq!(sharded.stats.requests, 0);
        assert_eq!(sharded.stats.fallbacks, 0);
    }
}
