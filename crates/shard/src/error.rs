//! The shard subsystem's error type.

use std::fmt;

/// Any failure while planning, executing, shipping, or combining shards.
#[derive(Debug)]
pub enum ShardError {
    /// A pipeline stage (matching, detection, fusion, table construction)
    /// failed; carries the rendered underlying error.
    Pipeline(String),
    /// Malformed shard-protocol bytes (bad magic, truncated frame,
    /// out-of-range row index) or a violated combiner invariant.
    Wire(String),
    /// The peer speaks a different `HmSh` frame version. Typed (rather
    /// than folded into [`ShardError::Wire`]) so coordinators can tell a
    /// mixed-version fleet apart from frame corruption during rollouts.
    VersionMismatch {
        /// Version byte found in the frame header.
        got: u8,
        /// Version this binary speaks.
        expected: u8,
    },
    /// A remote worker could not produce this shard batch: unreachable,
    /// timed out, or answered a non-200 status — after the retry on a
    /// distinct worker also failed and local fallback was disabled.
    Worker {
        /// Address of the worker that failed first.
        worker: String,
        /// What went wrong (connect error, HTTP status, decode failure).
        cause: String,
        /// True when the failure was a timeout (maps to 504 at the server,
        /// other causes map to 502).
        timeout: bool,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Pipeline(msg) => write!(f, "shard pipeline error: {msg}"),
            ShardError::Wire(msg) => write!(f, "shard protocol error: {msg}"),
            ShardError::VersionMismatch { got, expected } => write!(
                f,
                "shard protocol version mismatch: peer speaks v{got}, this binary speaks v{expected}"
            ),
            ShardError::Worker {
                worker,
                cause,
                timeout,
            } => {
                let kind = if *timeout { "timed out" } else { "failed" };
                write!(f, "shard worker {worker} {kind}: {cause}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<hummer_engine::EngineError> for ShardError {
    fn from(e: hummer_engine::EngineError) -> Self {
        ShardError::Pipeline(e.to_string())
    }
}

impl From<hummer_fusion::FusionError> for ShardError {
    fn from(e: hummer_fusion::FusionError) -> Self {
        ShardError::Pipeline(e.to_string())
    }
}

impl From<hummer_core::HummerError> for ShardError {
    fn from(e: hummer_core::HummerError) -> Self {
        ShardError::Pipeline(e.to_string())
    }
}

/// Shorthand result type for this crate.
pub type Result<T> = std::result::Result<T, ShardError>;
