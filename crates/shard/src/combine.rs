//! The combiner: deterministic merge of per-shard partials into the exact
//! output of the single-shard pipeline.
//!
//! ## The merge contract
//!
//! Partials may arrive in any order. The combiner
//!
//! 1. concatenates and canonically re-sorts the accepted/unsure pair lists
//!    (similarity descending, then `(left, right)` — a total order, so the
//!    merged lists equal the global detector's);
//! 2. re-runs the transitive closure over the merged accepted pairs on the
//!    full row space (pairs never cross shards, so this reproduces each
//!    shard's clusters, globally renumbered in smallest-member order — the
//!    same dense `objectID` numbering the single-shard detector emits);
//! 3. orders fused cluster rows by their global smallest member. Global
//!    fusion emits clusters in `objectID` first-appearance order, which *is*
//!    smallest-member order, so concatenating shard partials and sorting by
//!    the `min_member` tag reproduces the global row order byte for byte;
//! 4. re-caps conflict samples at [`MAX_SAMPLE_CONFLICTS`] while walking
//!    clusters in global order. Shard-side truncation is lossless: a
//!    shard's predecessors of cluster C are a subset of C's global
//!    predecessors, so the shard always ships at least as many samples for
//!    C as the global cap admits.

use crate::error::{Result, ShardError};
use crate::exec::ShardPartial;
use hummer_dupdetect::{
    annotate_object_ids, sort_pairs_canonical, DetectionResult, DetectionStats, UnionFind,
    OBJECT_ID_COLUMN,
};
use hummer_engine::{Row, Table};
use hummer_fusion::{Lineage, SampleConflict, MAX_SAMPLE_CONFLICTS};
use hummer_matching::SOURCE_ID_COLUMN;

/// The combiner's output: the merged detection artifacts plus the fused
/// table — field for field what `prepare_tables` + `fuse_prepared` yield.
#[derive(Debug, Clone)]
pub struct Combined {
    /// Merged detection (pairs, clusters, summed work counters).
    pub detection: DetectionResult,
    /// `integrated` with the globally renumbered `objectID` column.
    pub annotated: Table,
    /// The fused result table.
    pub table: Table,
    /// Per-cell lineage of `table` (global row indices).
    pub lineage: Lineage,
    /// Conflict samples, re-capped in global cluster order.
    pub sample_conflicts: Vec<SampleConflict>,
    /// Total resolved conflicts.
    pub conflict_count: usize,
}

/// Merge shard partials over the integrated table they were computed from.
/// `attributes_used` are the comparison column names (the coordinator
/// resolved them once; they land in the merged [`DetectionResult`]).
pub fn combine_partials(
    integrated: &Table,
    attributes_used: Vec<String>,
    partials: Vec<ShardPartial>,
) -> Result<Combined> {
    // 1. Merge detection: summed counters, canonically re-sorted pairs.
    let mut stats = DetectionStats::default();
    let mut pairs = Vec::new();
    let mut unsure = Vec::new();
    let mut conflict_count = 0usize;
    let mut flat = Vec::new();
    for partial in partials {
        stats.candidates += partial.candidates;
        stats.filtered_out += partial.filtered_out;
        stats.compared += partial.compared;
        stats.memo_hits += partial.memo_hits;
        conflict_count += partial.conflict_count;
        pairs.extend(partial.pairs);
        unsure.extend(partial.unsure);
        flat.extend(partial.clusters);
    }
    sort_pairs_canonical(&mut pairs);
    sort_pairs_canonical(&mut unsure);

    // 2. Global transitive closure → dense objectIDs in smallest-member
    // order, exactly as the single-shard detector numbers them.
    let mut uf = UnionFind::new(integrated.len());
    for p in &pairs {
        if p.left >= integrated.len() || p.right >= integrated.len() {
            return Err(ShardError::Wire(format!(
                "merged pair ({}, {}) outside the row space",
                p.left, p.right
            )));
        }
        uf.union(p.left, p.right);
    }
    let detection = DetectionResult {
        pairs,
        unsure,
        cluster_ids: uf.cluster_ids(),
        clusters: uf.clusters(),
        stats,
        attributes_used,
    };
    let annotated = annotate_object_ids(integrated, &detection)?;

    // 3. Assemble the fused table in global cluster order.
    flat.sort_by_key(|c| c.min_member);
    if flat.len() != detection.clusters.len() {
        return Err(ShardError::Wire(format!(
            "partials carry {} fused clusters but the merged closure has {}",
            flat.len(),
            detection.clusters.len()
        )));
    }
    for (cluster, partial) in detection.clusters.iter().zip(&flat) {
        if cluster[0] != partial.min_member {
            return Err(ShardError::Wire(format!(
                "cluster anchored at row {} has no matching partial (got {})",
                cluster[0], partial.min_member
            )));
        }
    }

    let oid = annotated.resolve(OBJECT_ID_COLUMN)?;
    let sid = annotated.resolve(SOURCE_ID_COLUMN)?;
    let out_cols: Vec<usize> = (0..annotated.schema().len())
        .filter(|&i| i != oid && i != sid)
        .collect();
    let out_schema = annotated.schema().project(&out_cols)?;
    let out_names: Vec<String> = out_schema.names().iter().map(|s| s.to_string()).collect();
    let mut table = Table::empty(annotated.name(), out_schema);
    let mut lineage = Lineage::new(out_names);
    let mut samples: Vec<SampleConflict> = Vec::new();
    for (global_idx, partial) in flat.into_iter().enumerate() {
        if partial.values.len() != out_cols.len() || partial.cells.len() != out_cols.len() {
            return Err(ShardError::Wire(format!(
                "partial cluster {global_idx} arity {} != output arity {}",
                partial.values.len(),
                out_cols.len()
            )));
        }
        // 4. Re-cap samples in global order (see module docs for why the
        // shard-side cap never starves this loop).
        for mut sample in partial.samples {
            if samples.len() >= MAX_SAMPLE_CONFLICTS {
                break;
            }
            sample.cluster = global_idx;
            samples.push(sample);
        }
        table.push(Row::from_values(partial.values))?;
        lineage.push_row(partial.cells);
    }

    Ok(Combined {
        detection,
        annotated,
        table,
        lineage,
        sample_conflicts: samples,
        conflict_count,
    })
}
