//! The shard planner: partition the union row space into K disjoint shards
//! such that per-shard detection sees every candidate pair the global
//! detector would.
//!
//! ## Invariants
//!
//! The planner computes the global candidate-pair list (the same
//! [`hummer_dupdetect::candidate_pairs`] call the detector makes), forms
//! the connected components of the candidate graph, and packs whole
//! components into at most K bins. Because a component never splits:
//!
//! 1. **Coverage** — every row lands in exactly one shard (singleton rows
//!    are their own components).
//! 2. **Co-occurrence** — both endpoints of every candidate pair land in
//!    the same shard, so no pair ever straddles a shard boundary and the
//!    union of per-shard scored pairs equals the global scored pairs.
//! 3. **Closure locality** — duplicate clusters (transitive closures over
//!    *accepted* pairs, a subgraph of the candidate graph) are entirely
//!    contained in one shard, so per-shard fusion fuses exactly the global
//!    clusters.
//!
//! Packing is deterministic: components in decreasing cost order (candidate
//! pairs + rows, ties by smallest member) go to the least-loaded bin
//! (lowest index on ties). [`CandidateSpec::AllPairs`] and wide
//! sorted-neighborhood windows yield one giant component — the plan then
//! degrades to a single shard, which is correct but not distributed; use
//! [`CandidateSpec::KeyEquality`] (or a narrow-window key) when real
//! fan-out is wanted.

use crate::error::{Result, ShardError};
use hummer_dupdetect::{
    candidate_pairs, resolve_candidate_strategy, CandidateSpec, DetectorConfig, UnionFind,
};
use hummer_engine::Table;

/// One shard of the plan: a disjoint subset of the union rows plus the
/// candidate pairs whose endpoints both fall in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Global row indices, ascending.
    pub rows: Vec<usize>,
    /// Global candidate pairs `(left, right)` with `left < right`, both in
    /// `rows`, in lexicographic order.
    pub candidates: Vec<(usize, usize)>,
}

/// A complete shard plan over one integrated table.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The non-empty shards (at most the requested K).
    pub shards: Vec<Shard>,
    /// Connected components of the candidate graph (the packing units).
    pub components: usize,
    /// Total candidate pairs across all shards (== the global candidate
    /// count, since pairs partition exactly).
    pub candidates: usize,
}

impl ShardPlan {
    /// Audit the plan's invariants against a table of `n` rows: rows
    /// partition `0..n` and no shard's candidate pair references a row
    /// outside that shard. Returns the number of violations (0 = sound).
    /// Property tests call this; production paths rely on construction.
    pub fn audit(&self, n: usize) -> usize {
        let mut violations = 0usize;
        let mut owner = vec![usize::MAX; n];
        for (si, shard) in self.shards.iter().enumerate() {
            for &r in &shard.rows {
                if r >= n || owner[r] != usize::MAX {
                    violations += 1;
                } else {
                    owner[r] = si;
                }
            }
            for &(a, b) in &shard.candidates {
                if a >= n || b >= n || owner[a] != si || owner[b] != si {
                    violations += 1;
                }
            }
        }
        violations += owner.iter().filter(|&&o| o == usize::MAX).count();
        violations
    }
}

/// Plan at most `k` shards for `table` under the detector configuration's
/// candidate strategy. `k = 1` always yields one shard holding everything
/// (when the table is non-empty); larger `k` is a ceiling — fewer shards
/// come back when the candidate graph has fewer components.
pub fn plan_shards(table: &Table, cfg: &DetectorConfig, k: usize) -> Result<ShardPlan> {
    if k == 0 {
        return Err(ShardError::Pipeline(
            "shard count must be at least 1".into(),
        ));
    }
    let strategy = resolve_candidate_strategy(table, &cfg.candidates)?;
    let candidates = candidate_pairs(table, &strategy);
    let n = table.len();

    // Connected components of the candidate graph.
    let mut uf = UnionFind::new(n);
    for &(a, b) in &candidates {
        uf.union(a, b);
    }
    let components = uf.clusters(); // ordered by smallest member, members ascending
    let mut comp_of = vec![0usize; n];
    for (ci, members) in components.iter().enumerate() {
        for &m in members {
            comp_of[m] = ci;
        }
    }

    // Cost per component: its candidate pairs (scoring work) plus its rows
    // (fusion/transfer work).
    let mut cost = vec![0usize; components.len()];
    for (ci, members) in components.iter().enumerate() {
        cost[ci] = members.len();
    }
    for &(a, _) in &candidates {
        cost[comp_of[a]] += 1;
    }

    // Deterministic greedy packing: heaviest component first (ties by
    // smallest member — component index, since components are ordered by
    // smallest member), into the least-loaded bin (lowest index on ties).
    let bins = k.min(components.len()).max(1);
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by(|&x, &y| cost[y].cmp(&cost[x]).then(x.cmp(&y)));
    let mut load = vec![0usize; bins];
    let mut assign = vec![0usize; components.len()];
    for &ci in &order {
        let bin = (0..bins).min_by_key(|&b| (load[b], b)).unwrap_or(0);
        assign[ci] = bin;
        load[bin] += cost[ci];
    }

    // Materialize the shards.
    let mut shards: Vec<Shard> = (0..bins)
        .map(|_| Shard {
            rows: Vec::new(),
            candidates: Vec::new(),
        })
        .collect();
    for (ci, members) in components.iter().enumerate() {
        shards[assign[ci]].rows.extend_from_slice(members);
    }
    for &(a, b) in &candidates {
        shards[assign[comp_of[a]]].candidates.push((a, b));
    }
    for shard in &mut shards {
        shard.rows.sort_unstable();
        shard.candidates.sort_unstable();
    }
    shards.retain(|s| !s.rows.is_empty());

    Ok(ShardPlan {
        shards,
        components: components.len(),
        candidates: candidates.len(),
    })
}

/// A [`DetectorConfig`] candidate spec that actually distributes: disjoint
/// key-equality blocking makes each key group its own component. Purely a
/// convenience for callers assembling shardable configurations.
pub fn key_equality_spec(key: impl Into<String>) -> CandidateSpec {
    CandidateSpec::KeyEquality {
        key: vec![key.into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn keyed_table() -> Table {
        table! {
            "T" => ["Name", "Age"];
            ["alpha", 1],
            ["beta", 2],
            ["alpha", 3],
            ["gamma", 4],
            ["beta", 5],
            ["delta", 6],
        }
    }

    fn cfg_key_equality() -> DetectorConfig {
        DetectorConfig {
            candidates: key_equality_spec("Name"),
            ..Default::default()
        }
    }

    #[test]
    fn plan_partitions_rows_and_contains_pairs() {
        let t = keyed_table();
        for k in 1..=8 {
            let plan = plan_shards(&t, &cfg_key_equality(), k).unwrap();
            assert_eq!(plan.audit(t.len()), 0, "k={k}");
            let total_rows: usize = plan.shards.iter().map(|s| s.rows.len()).sum();
            assert_eq!(total_rows, t.len(), "k={k}");
            let total_pairs: usize = plan.shards.iter().map(|s| s.candidates.len()).sum();
            assert_eq!(total_pairs, plan.candidates, "k={k}");
            assert!(plan.shards.len() <= k, "k={k}");
        }
    }

    #[test]
    fn key_groups_never_split() {
        let t = keyed_table();
        let plan = plan_shards(&t, &cfg_key_equality(), 4).unwrap();
        // Rows 0/2 (alpha) and 1/4 (beta) must each share a shard.
        let shard_of = |r: usize| {
            plan.shards
                .iter()
                .position(|s| s.rows.contains(&r))
                .unwrap()
        };
        assert_eq!(shard_of(0), shard_of(2));
        assert_eq!(shard_of(1), shard_of(4));
    }

    #[test]
    fn all_pairs_degrades_to_one_shard() {
        let t = keyed_table();
        let cfg = DetectorConfig::default(); // AllPairs
        let plan = plan_shards(&t, &cfg, 4).unwrap();
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.components, 1);
    }

    #[test]
    fn empty_table_plans_no_shards() {
        let t = table! { "E" => ["Name"]; };
        let plan = plan_shards(&t, &cfg_key_equality(), 4).unwrap();
        assert!(plan.shards.is_empty());
        assert_eq!(plan.audit(0), 0);
    }

    #[test]
    fn zero_shards_rejected() {
        let t = keyed_table();
        assert!(plan_shards(&t, &cfg_key_equality(), 0).is_err());
    }

    #[test]
    fn packing_is_deterministic() {
        let t = keyed_table();
        let a = plan_shards(&t, &cfg_key_equality(), 3).unwrap();
        let b = plan_shards(&t, &cfg_key_equality(), 3).unwrap();
        assert_eq!(a.shards, b.shards);
    }
}
