//! # hummer-engine — the relational substrate of HumMer
//!
//! An in-memory relational algebra standing in for the Java XXL library
//! ("an extensible library for building database management systems",
//! van den Bercken et al., VLDB 2001) that the original HumMer demo was
//! built on. It supplies everything the fusion pipeline needs:
//!
//! * dynamically typed [`value::Value`]s with SQL `NULL` semantics,
//! * [`schema::Schema`] / [`table::Table`] with arity and name invariants,
//! * scalar [`expr::Expr`]essions with three-valued logic (`WHERE`/`HAVING`),
//! * materialized operators in [`ops`]: selection, projection, joins
//!   (nested-loop, hash, cross), `UNION`, **full outer union** (the basis of
//!   `FUSE FROM`), sorting, grouping with SQL aggregates, distinct, limit,
//! * lazy XXL-style cursors in [`cursor`],
//! * CSV ingestion/serialization in [`csv`],
//! * the bit-exact binary codec in [`codec`] (the byte layer under the
//!   durable catalog store).
//!
//! ## Example
//!
//! ```
//! use hummer_engine::{table, ops, expr::Expr};
//!
//! let ee = table! {
//!     "EE_Student" => ["Name", "Age"];
//!     ["Alice", 22],
//!     ["Bob", 24],
//! };
//! let cs = table! {
//!     "CS_Students" => ["Name", "Semester"];
//!     ["Alice", 5],
//! };
//! // FUSE FROM combines tables by outer union, not cross product:
//! let u = ops::outer_union(&[&ee, &cs], "Students").unwrap();
//! assert_eq!(u.schema().names(), vec!["Name", "Age", "Semester"]);
//! assert_eq!(u.len(), 3);
//! let adults = ops::select(&u, &Expr::col("Age").gt(Expr::lit(21))).unwrap();
//! assert_eq!(adults.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod columnar;
pub mod csv;
pub mod cursor;
pub mod error;
pub mod expr;
pub mod ops;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use columnar::{ColumnData, ColumnarBatch, ExecutionLayout};
pub use error::EngineError;
pub use expr::Expr;
pub use row::{IntoValue, Row};
pub use schema::{Column, ColumnType, Schema};
pub use table::Table;
pub use value::{Date, Value};

/// Engine-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
