//! Scalar expressions over rows: the engine's predicate and computation
//! language (used by `WHERE` and `HAVING` in Fuse By queries).

use crate::error::EngineError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use std::fmt;

/// Binary comparison operators with SQL three-valued-logic semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        })
    }
}

/// A scalar expression tree.
///
/// Expressions are resolved against a [`Schema`] at evaluation time by
/// column name, which keeps them reusable across the renamings the
/// transformation phase performs.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by (case-insensitive) name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Comparison, three-valued: `NULL op x` evaluates to `NULL`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic; `NULL` propagates.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `expr IS NULL`
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`
    IsNotNull(Box<Expr>),
    /// `expr LIKE pattern` with `%` and `_` wildcards (case-sensitive).
    Like(Box<Expr>, String),
    /// `expr IN (v1, v2, ...)`
    In(Box<Expr>, Vec<Expr>),
    /// Scalar function call (LOWER, UPPER, LENGTH, ABS, COALESCE, ...).
    Call(String, Vec<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// Shorthand: `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// Shorthand: `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// Shorthand: `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Shorthand: `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate against a row under a schema.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema.resolve(name, "<expr>")?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(schema, row)?;
                let rv = r.eval(schema, row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let ord = lv.cmp_total(&rv);
                let b = match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                };
                Ok(Value::Bool(b))
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(schema, row)?;
                let rv = r.eval(schema, row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                eval_arith(*op, &lv, &rv)
            }
            Expr::And(l, r) => {
                let lv = truth(&l.eval(schema, row)?)?;
                let rv = truth(&r.eval(schema, row)?)?;
                // Kleene logic: FALSE dominates NULL.
                Ok(match (lv, rv) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Expr::Or(l, r) => {
                let lv = truth(&l.eval(schema, row)?)?;
                let rv = truth(&r.eval(schema, row)?)?;
                Ok(match (lv, rv) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            Expr::Not(e) => Ok(match truth(&e.eval(schema, row)?)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(schema, row)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval(schema, row)?.is_null())),
            Expr::Like(e, pattern) => {
                let v = e.eval(schema, row)?;
                match v.as_text() {
                    None => Ok(Value::Null),
                    Some(s) => Ok(Value::Bool(like_match(&s, pattern))),
                }
            }
            Expr::In(e, list) => {
                let v = e.eval(schema, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(schema, row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            Expr::Call(name, args) => eval_call(name, args, schema, row),
            Expr::Neg(e) => {
                let v = e.eval(schema, row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(EngineError::TypeError(format!("cannot negate {other:?}"))),
                }
            }
        }
    }

    /// Evaluate as a predicate: `NULL` counts as not-satisfied (SQL `WHERE`).
    pub fn matches(&self, schema: &Schema, row: &Row) -> Result<bool> {
        Ok(truth(&self.eval(schema, row)?)?.unwrap_or(false))
    }

    /// All column names referenced by the expression (with duplicates).
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(n) => out.push(n),
            Expr::Literal(_) => {}
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) | Expr::Neg(e) => {
                e.collect_columns(out)
            }
            Expr::Like(e, _) => e.collect_columns(out),
            Expr::In(e, list) => {
                e.collect_columns(out);
                for i in list {
                    i.collect_columns(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// Coerce a value to three-valued truth. Non-boolean, non-null values are a
/// type error (SQL does not truthify arbitrary values).
fn truth(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::TypeError(format!(
            "expected boolean condition, got {other:?}"
        ))),
    }
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    // String concatenation via `+`.
    if op == ArithOp::Add {
        if let (Value::Text(a), Value::Text(b)) = (l, r) {
            return Ok(Value::Text(format!("{a}{b}")));
        }
    }
    // Pure integer arithmetic stays integral.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            ArithOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {
                if *b == 0 {
                    Err(EngineError::Expression("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            ArithOp::Mod => {
                if *b == 0 {
                    Err(EngineError::Expression("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EngineError::TypeError(format!(
                "arithmetic {op} not defined on {l:?} and {r:?}"
            )))
        }
    };
    let x = match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => {
            if b == 0.0 {
                return Err(EngineError::Expression("division by zero".into()));
            }
            a / b
        }
        ArithOp::Mod => {
            if b == 0.0 {
                return Err(EngineError::Expression("modulo by zero".into()));
            }
            a % b
        }
    };
    Ok(Value::Float(x))
}

fn eval_call(name: &str, args: &[Expr], schema: &Schema, row: &Row) -> Result<Value> {
    let lower = name.to_ascii_lowercase();
    let arity = |n: usize| -> Result<()> {
        if args.len() != n {
            Err(EngineError::Expression(format!(
                "function {name} expects {n} argument(s), got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    match lower.as_str() {
        "coalesce" => {
            for a in args {
                let v = a.eval(schema, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "lower" | "upper" => {
            arity(1)?;
            let v = args[0].eval(schema, row)?;
            Ok(match v.as_text() {
                None => Value::Null,
                Some(s) => Value::Text(if lower == "lower" {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                }),
            })
        }
        "length" => {
            arity(1)?;
            let v = args[0].eval(schema, row)?;
            Ok(match v.as_text() {
                None => Value::Null,
                Some(s) => Value::Int(s.chars().count() as i64),
            })
        }
        "trim" => {
            arity(1)?;
            let v = args[0].eval(schema, row)?;
            Ok(match v.as_text() {
                None => Value::Null,
                Some(s) => Value::Text(s.trim().to_string()),
            })
        }
        "abs" => {
            arity(1)?;
            match args[0].eval(schema, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(EngineError::TypeError(format!("ABS of {other:?}"))),
            }
        }
        "round" => {
            arity(1)?;
            match args[0].eval(schema, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => Ok(Value::Int(f.round() as i64)),
                other => Err(EngineError::TypeError(format!("ROUND of {other:?}"))),
            }
        }
        _ => Err(EngineError::Expression(format!(
            "unknown function `{name}`"
        ))),
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any single char).
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try consuming 0..=len chars.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::of_names(&["name", "age", "city"]).unwrap()
    }

    fn alice() -> Row {
        row!["Alice", 22, ()]
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        let r = alice();
        assert_eq!(
            Expr::col("name").eval(&s, &r).unwrap(),
            Value::text("Alice")
        );
        assert_eq!(Expr::lit(7).eval(&s, &r).unwrap(), Value::Int(7));
        assert!(Expr::col("nope").eval(&s, &r).is_err());
    }

    #[test]
    fn comparisons_three_valued() {
        let s = schema();
        let r = alice();
        let e = Expr::col("age").gt(Expr::lit(21));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
        // city is NULL → comparison is NULL → matches() is false
        let e2 = Expr::col("city").eq(Expr::lit("Berlin"));
        assert_eq!(e2.eval(&s, &r).unwrap(), Value::Null);
        assert!(!e2.matches(&s, &r).unwrap());
    }

    #[test]
    fn kleene_and_or() {
        let s = schema();
        let r = alice();
        let null = Expr::col("city").eq(Expr::lit("x"));
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        // FALSE AND NULL = FALSE
        assert_eq!(
            f.clone().and(null.clone()).eval(&s, &r).unwrap(),
            Value::Bool(false)
        );
        // TRUE AND NULL = NULL
        assert_eq!(
            t.clone().and(null.clone()).eval(&s, &r).unwrap(),
            Value::Null
        );
        // TRUE OR NULL = TRUE
        assert_eq!(t.or(null.clone()).eval(&s, &r).unwrap(), Value::Bool(true));
        // FALSE OR NULL = NULL
        assert_eq!(f.or(null.clone()).eval(&s, &r).unwrap(), Value::Null);
        // NOT NULL = NULL
        assert_eq!(Expr::Not(Box::new(null)).eval(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let r = alice();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col("age")),
            Box::new(Expr::lit(8)),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(30));
        let d = Expr::Arith(ArithOp::Div, Box::new(Expr::lit(7)), Box::new(Expr::lit(2)));
        assert_eq!(d.eval(&s, &r).unwrap(), Value::Int(3));
        let fdiv = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::lit(7.0)),
            Box::new(Expr::lit(2)),
        );
        assert_eq!(fdiv.eval(&s, &r).unwrap(), Value::Float(3.5));
        let zero = Expr::Arith(ArithOp::Div, Box::new(Expr::lit(1)), Box::new(Expr::lit(0)));
        assert!(zero.eval(&s, &r).is_err());
    }

    #[test]
    fn string_concat_via_plus() {
        let s = schema();
        let r = alice();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col("name")),
            Box::new(Expr::lit("!")),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::text("Alice!"));
    }

    #[test]
    fn null_propagates_through_arith() {
        let s = schema();
        let r = alice();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col("city")),
            Box::new(Expr::lit(1)),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        let s = schema();
        let r = alice();
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col("city")))
                .eval(&s, &r)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::IsNotNull(Box::new(Expr::col("name")))
                .eval(&s, &r)
                .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Alice", "A%"));
        assert!(like_match("Alice", "%ice"));
        assert!(like_match("Alice", "A_ice"));
        assert!(!like_match("Alice", "B%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn in_list_with_null() {
        let s = schema();
        let r = alice();
        let e = Expr::In(
            Box::new(Expr::col("age")),
            vec![Expr::lit(21), Expr::lit(22)],
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
        let e2 = Expr::In(
            Box::new(Expr::col("age")),
            vec![Expr::lit(1), Expr::Literal(Value::Null)],
        );
        assert_eq!(e2.eval(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn scalar_functions() {
        let s = schema();
        let r = alice();
        let call = |n: &str, args: Vec<Expr>| Expr::Call(n.into(), args);
        assert_eq!(
            call("LOWER", vec![Expr::col("name")]).eval(&s, &r).unwrap(),
            Value::text("alice")
        );
        assert_eq!(
            call("length", vec![Expr::col("name")])
                .eval(&s, &r)
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call("coalesce", vec![Expr::col("city"), Expr::lit("?")])
                .eval(&s, &r)
                .unwrap(),
            Value::text("?")
        );
        assert_eq!(
            call("abs", vec![Expr::lit(-5)]).eval(&s, &r).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call("round", vec![Expr::lit(2.6)]).eval(&s, &r).unwrap(),
            Value::Int(3)
        );
        assert!(call("nope", vec![]).eval(&s, &r).is_err());
        assert!(call("lower", vec![]).eval(&s, &r).is_err());
    }

    #[test]
    fn columns_collects_references() {
        let e = Expr::col("a")
            .eq(Expr::lit(1))
            .and(Expr::col("b").gt(Expr::col("c")));
        assert_eq!(e.columns(), vec!["a", "b", "c"]);
    }
}
