//! CSV reading and writing (RFC-4180-style quoting).
//!
//! The metadata repository registers flat files as sources; this module is
//! the engine's ingestion path for them. Types are inferred per cell with
//! [`Value::infer`] and then unified per column.

use crate::error::EngineError;
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// Parse one CSV record from `input` starting at `pos`, honoring quoted
/// fields (doubled quotes escape). Returns the fields and the next offset,
/// or `None` at end of input.
fn parse_record(input: &str, pos: usize) -> Option<(Vec<String>, usize)> {
    if pos >= input.len() {
        return None;
    }
    let bytes = input.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = pos;
    let mut in_quotes = false;
    loop {
        if i >= bytes.len() {
            fields.push(std::mem::take(&mut field));
            return Some((fields, i));
        }
        let c = bytes[i];
        if in_quotes {
            match c {
                b'"' => {
                    if bytes.get(i + 1) == Some(&b'"') {
                        field.push('"');
                        i += 2;
                    } else {
                        in_quotes = false;
                        i += 1;
                    }
                }
                _ => {
                    // Multi-byte UTF-8 safe: copy the whole char.
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' => {
                    if bytes.get(i + 1) == Some(&b'\n') {
                        i += 1;
                    }
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 1));
                }
                b'\n' => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 1));
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

/// Parse CSV text (first record = header) into a table named `name`.
pub fn read_csv_str(name: &str, content: &str) -> Result<Table> {
    let (header, mut pos) =
        parse_record(content, 0).ok_or_else(|| EngineError::Parse("empty CSV input".into()))?;
    let mut table = Table::from_rows(name, &header, Vec::new())?;
    let ncols = header.len();
    let mut line = 1usize;
    while let Some((fields, next)) = parse_record(content, pos) {
        pos = next;
        line += 1;
        // Skip completely blank trailing lines.
        if fields.len() == 1 && fields[0].is_empty() {
            continue;
        }
        if fields.len() != ncols {
            return Err(EngineError::Parse(format!(
                "CSV record {line} has {} fields, header has {ncols}",
                fields.len()
            )));
        }
        let row: Row = fields.iter().map(|f| Value::infer(f)).collect();
        table.push(row)?;
    }
    table.infer_types();
    Ok(table)
}

/// Read a CSV file into a table named `name`.
pub fn read_csv_file(name: &str, path: impl AsRef<Path>) -> Result<Table> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut content = String::new();
    reader.read_to_string(&mut content)?;
    read_csv_str(name, &content)
}

/// Quote a field if it contains separators, quotes, or newlines.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize a table as CSV text (header + rows; `NULL` as empty field).
pub fn write_csv_str(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|n| quote_field(n))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let fields: Vec<String> = row
            .values()
            .iter()
            .map(|v| quote_field(&v.to_string()))
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(write_csv_str(table).as_bytes())?;
    f.flush()?;
    Ok(())
}

/// Read CSV from any reader.
pub fn read_csv<R: Read>(name: &str, reader: R) -> Result<Table> {
    let mut content = String::new();
    BufReader::new(reader).read_to_string(&mut content)?;
    read_csv_str(name, &content)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn basic_round_trip() {
        let csv = "name,age\nAlice,22\nBob,24\n";
        let t = read_csv_str("T", csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().names(), vec!["name", "age"]);
        assert_eq!(t.cell(0, 1), &Value::Int(22));
        assert_eq!(write_csv_str(&t), csv);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n";
        let t = read_csv_str("T", csv).unwrap();
        assert_eq!(t.cell(0, 0), &Value::text("x,y"));
        assert_eq!(t.cell(0, 1), &Value::text("say \"hi\""));
        // Round-trips
        let again = read_csv_str("T", &write_csv_str(&t)).unwrap();
        assert_eq!(again.rows(), t.rows());
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let csv = "a\n\"line1\nline2\"\n";
        let t = read_csv_str("T", csv).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 0), &Value::text("line1\nline2"));
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n";
        let t = read_csv_str("T", csv).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 1), &Value::Int(2));
    }

    #[test]
    fn empty_fields_become_null() {
        let csv = "a,b\n1,\n,2\n";
        let t = read_csv_str("T", csv).unwrap();
        assert!(t.cell(0, 1).is_null());
        assert!(t.cell(1, 0).is_null());
    }

    #[test]
    fn type_inference_per_column() {
        let csv = "i,f,d,s\n1,1.5,2005-01-01,abc\n2,2.5,2006-02-02,def\n";
        let t = read_csv_str("T", csv).unwrap();
        let types: Vec<ColumnType> = t.schema().columns().iter().map(|c| c.ctype).collect();
        assert_eq!(
            types,
            vec![
                ColumnType::Int,
                ColumnType::Float,
                ColumnType::Date,
                ColumnType::Text
            ]
        );
    }

    #[test]
    fn ragged_record_errors() {
        let csv = "a,b\n1\n";
        assert!(read_csv_str("T", csv).is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv_str("T", "").is_err());
    }

    #[test]
    fn trailing_blank_lines_ignored() {
        let csv = "a\n1\n\n\n";
        let t = read_csv_str("T", csv).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hummer_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = crate::table! {
            "T" => ["x", "y"];
            [1, "a"],
            [(), "b,c"],
        };
        write_csv_file(&t, &path).unwrap();
        let back = read_csv_file("T", &path).unwrap();
        assert_eq!(back.rows(), t.rows());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unicode_content() {
        let csv = "name\nKrämer\n北京\n";
        let t = read_csv_str("T", csv).unwrap();
        assert_eq!(t.cell(0, 0), &Value::text("Krämer"));
        assert_eq!(t.cell(1, 0), &Value::text("北京"));
    }
}
