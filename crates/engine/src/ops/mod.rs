//! Relational-algebra operators over [`Table`](crate::table::Table)s.
//!
//! This module is the stand-in for the XXL query-engine library the original
//! HumMer was built on: it supplies exactly the algebra the paper's pipeline
//! needs — "table fetches, joins, unions, and groupings" (§3) — plus the
//! **full outer union** that `FUSE FROM` is defined by.
//!
//! Operators are materialized (they consume `&Table` and produce a new
//! `Table`); the lazy cursor equivalents live in [`crate::cursor`].

mod filter;
mod group;
mod join;
mod misc;
mod setops;
mod sort;

pub use filter::select;
pub use group::{group_by, AggFunc, Aggregate};
pub use join::{cross_product, hash_join, nested_loop_join, JoinKind};
pub use misc::{distinct, limit, project, project_named, rename_column};
pub use setops::{outer_union, outer_union_columnar, outer_union_pair, union_all, union_distinct};
pub use sort::{sort, SortKey};
