//! Grouping and standard SQL aggregation (`GROUP BY`).
//!
//! The *conflict resolution* of the fusion layer is "implemented as user
//! defined aggregation" (paper §2.4); this module provides the plain SQL
//! aggregates that Fuse By inherits (`min`, `max`, `sum`, …), while the
//! richer, context-aware resolution functions live in `hummer-fusion`.

use crate::error::EngineError;
use crate::row::Row;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::fmt;

/// A standard SQL aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(col)` — non-null count.
    Count,
    /// `COUNT(*)` — row count.
    CountAll,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
}

impl AggFunc {
    /// Parse a function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Apply to the (possibly empty) multiset of values of one group.
    /// Null handling follows SQL: nulls are ignored; aggregates of an
    /// all-null group are `NULL` (except the counts).
    pub fn apply(&self, values: &[&Value]) -> Result<Value> {
        let non_null: Vec<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
        match self {
            AggFunc::CountAll => Ok(Value::Int(values.len() as i64)),
            AggFunc::Count => Ok(Value::Int(non_null.len() as i64)),
            AggFunc::Min => Ok(non_null
                .iter()
                .min_by(|a, b| a.cmp_total(b))
                .map(|v| (**v).clone())
                .unwrap_or(Value::Null)),
            AggFunc::Max => Ok(non_null
                .iter()
                .max_by(|a, b| a.cmp_total(b))
                .map(|v| (**v).clone())
                .unwrap_or(Value::Null)),
            AggFunc::Sum | AggFunc::Avg => {
                if non_null.is_empty() {
                    return Ok(Value::Null);
                }
                let mut sum = 0.0;
                let mut all_int = true;
                for v in &non_null {
                    match v {
                        Value::Int(i) => sum += *i as f64,
                        Value::Float(f) => {
                            all_int = false;
                            sum += f;
                        }
                        other => {
                            return Err(EngineError::TypeError(format!(
                                "{self} over non-numeric value {other:?}"
                            )))
                        }
                    }
                }
                if *self == AggFunc::Avg {
                    Ok(Value::Float(sum / non_null.len() as f64))
                } else if all_int {
                    Ok(Value::Int(sum as i64))
                } else {
                    Ok(Value::Float(sum))
                }
            }
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountAll => "COUNT(*)",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
        })
    }
}

/// One aggregate column in a `GROUP BY` result.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Input column; ignored for `COUNT(*)`.
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl Aggregate {
    /// Construct an aggregate.
    pub fn new(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Self {
        Aggregate {
            func,
            column: column.into(),
            alias: alias.into(),
        }
    }
}

/// `GROUP BY keys` with the given aggregates. Groups appear in order of
/// first occurrence; `NULL` group keys form a single group (SQL behaviour).
/// With an empty `keys`, the whole input is one group (even when empty).
pub fn group_by(table: &Table, keys: &[&str], aggregates: &[Aggregate]) -> Result<Table> {
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| table.resolve(k))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggregates
        .iter()
        .map(|a| {
            if a.func == AggFunc::CountAll {
                Ok(None)
            } else {
                table.resolve(&a.column).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut cols: Vec<Column> = key_idx
        .iter()
        .map(|&i| table.schema().column(i).clone())
        .collect();
    for a in aggregates {
        let ctype = match a.func {
            AggFunc::Count | AggFunc::CountAll => ColumnType::Int,
            AggFunc::Avg => ColumnType::Float,
            _ => ColumnType::Any,
        };
        cols.push(Column::new(a.alias.clone(), ctype));
    }
    let schema = Schema::new(cols)?;

    // Group rows, preserving first-occurrence order.
    let mut order: Vec<Row> = Vec::new();
    let mut groups: HashMap<Row, Vec<usize>> = HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        let key = row.project(&key_idx);
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(i);
    }
    // Global aggregation over an empty table still yields one row.
    if keys.is_empty() && table.is_empty() {
        order.push(Row::new());
        groups.insert(Row::new(), Vec::new());
    }

    let mut out = Table::empty(table.name(), schema);
    for key in order {
        let members = &groups[&key];
        let mut values = key.into_values();
        for (a, idx) in aggregates.iter().zip(&agg_idx) {
            let column_values: Vec<&Value> = match idx {
                Some(c) => members.iter().map(|&i| &table.rows()[i][*c]).collect(),
                None => members.iter().map(|&i| &table.rows()[i][0]).collect(),
            };
            values.push(a.func.apply(&column_values)?);
        }
        out.push(Row::from_values(values))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn sales() -> Table {
        table! {
            "S" => ["region", "amount"];
            ["north", 10],
            ["south", 20],
            ["north", 30],
            ["south", ()],
            [(), 5],
        }
    }

    #[test]
    fn group_by_single_key() {
        let g = group_by(
            &sales(),
            &["region"],
            &[
                Aggregate::new(AggFunc::Sum, "amount", "total"),
                Aggregate::new(AggFunc::Count, "amount", "n"),
                Aggregate::new(AggFunc::CountAll, "", "rows"),
            ],
        )
        .unwrap();
        assert_eq!(g.len(), 3); // north, south, NULL
        let north = g
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("north"))
            .unwrap();
        assert_eq!(north[1], Value::Int(40));
        assert_eq!(north[2], Value::Int(2));
        let south = g
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("south"))
            .unwrap();
        assert_eq!(south[1], Value::Int(20));
        assert_eq!(south[2], Value::Int(1)); // NULL not counted
        assert_eq!(south[3], Value::Int(2)); // but COUNT(*) counts it
    }

    #[test]
    fn null_keys_group_together() {
        let t = table! {
            "T" => ["k", "v"];
            [(), 1],
            [(), 2],
        };
        let g = group_by(&t, &["k"], &[Aggregate::new(AggFunc::Sum, "v", "s")]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.cell(0, 1), &Value::Int(3));
    }

    #[test]
    fn global_aggregate_no_keys() {
        let g = group_by(
            &sales(),
            &[],
            &[Aggregate::new(AggFunc::Avg, "amount", "a")],
        )
        .unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.cell(0, 0), &Value::Float(65.0 / 4.0));
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let t = table! { "E" => ["x"]; };
        let g = group_by(
            &t,
            &[],
            &[
                Aggregate::new(AggFunc::CountAll, "", "n"),
                Aggregate::new(AggFunc::Sum, "x", "s"),
            ],
        )
        .unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.cell(0, 0), &Value::Int(0));
        assert!(g.cell(0, 1).is_null());
    }

    #[test]
    fn min_max_on_text() {
        let t = table! { "T" => ["s"]; ["b"], ["a"], ["c"] };
        let g = group_by(
            &t,
            &[],
            &[
                Aggregate::new(AggFunc::Min, "s", "lo"),
                Aggregate::new(AggFunc::Max, "s", "hi"),
            ],
        )
        .unwrap();
        assert_eq!(g.cell(0, 0), &Value::text("a"));
        assert_eq!(g.cell(0, 1), &Value::text("c"));
    }

    #[test]
    fn sum_type_error_on_text() {
        let t = table! { "T" => ["s"]; ["b"] };
        assert!(group_by(&t, &[], &[Aggregate::new(AggFunc::Sum, "s", "x")]).is_err());
    }

    #[test]
    fn sum_stays_int_when_all_int() {
        let t = table! { "T" => ["x"]; [1], [2] };
        let g = group_by(&t, &[], &[Aggregate::new(AggFunc::Sum, "x", "s")]).unwrap();
        assert_eq!(g.cell(0, 0), &Value::Int(3));
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("MAX"), Some(AggFunc::Max));
        assert_eq!(AggFunc::parse("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn groups_preserve_first_occurrence_order() {
        let g = group_by(&sales(), &["region"], &[]).unwrap();
        assert_eq!(g.cell(0, 0), &Value::text("north"));
        assert_eq!(g.cell(1, 0), &Value::text("south"));
        assert!(g.cell(2, 0).is_null());
    }
}
