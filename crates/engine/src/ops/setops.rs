//! Set operators, most importantly the **full outer union** that gives
//! `FUSE FROM` its semantics.
//!
//! The outer union of tables T₁…Tₙ has the union of all their columns
//! (aligned by name, first-seen order) and Σ|Tᵢ| rows; each row is padded
//! with `NULL` in the columns its source lacks. The paper's transformation
//! phase renames matched attributes to the preferred schema first, so
//! semantically corresponding columns share a name by the time this operator
//! runs (§2.2: "the full outer union of all tables is computed").

use crate::columnar::{ColumnData, ColumnarBatch};
use crate::error::EngineError;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::collections::HashSet;

/// `UNION ALL`: same-arity inputs, columns aligned by position, left schema
/// wins. Errors when arities differ.
pub fn union_all(left: &Table, right: &Table) -> Result<Table> {
    if left.schema().len() != right.schema().len() {
        return Err(EngineError::SchemaMismatch(format!(
            "UNION arity mismatch: {} vs {} columns",
            left.schema().len(),
            right.schema().len()
        )));
    }
    let mut out = Table::empty(left.name(), left.schema().clone());
    for r in left.rows().iter().chain(right.rows()) {
        out.push(r.clone())?;
    }
    Ok(out)
}

/// `UNION` (distinct): [`union_all`] followed by duplicate elimination.
pub fn union_distinct(left: &Table, right: &Table) -> Result<Table> {
    let all = union_all(left, right)?;
    let mut seen: HashSet<Row> = HashSet::with_capacity(all.len());
    let mut out = Table::empty(all.name(), all.schema().clone());
    for r in all.rows() {
        if seen.insert(r.clone()) {
            out.push(r.clone())?;
        }
    }
    Ok(out)
}

/// Full outer union of two tables (columns aligned by name).
pub fn outer_union_pair(left: &Table, right: &Table) -> Result<Table> {
    outer_union(&[left, right], &format!("{}∪{}", left.name(), right.name()))
}

/// Full outer union of any number of tables, aligned by column name.
///
/// The result's schema is the name-wise union of all input schemas in
/// first-seen order; every input row appears exactly once, `NULL`-padded in
/// the columns its source does not provide.
pub fn outer_union(tables: &[&Table], name: &str) -> Result<Table> {
    if tables.is_empty() {
        return Table::new(name, Schema::of_names::<&str>(&[])?, Vec::new());
    }
    let mut schema = tables[0].schema().clone();
    for t in &tables[1..] {
        schema = schema.outer_union(t.schema());
    }
    let mut out = Table::empty(name, schema.clone());
    for t in tables {
        // Mapping: position in the output schema -> position in t (if any).
        let mapping: Vec<Option<usize>> = schema
            .columns()
            .iter()
            .map(|c| t.schema().index_of(&c.name))
            .collect();
        for row in t.rows() {
            let values: Vec<Value> = mapping
                .iter()
                .map(|m| m.map(|i| row[i].clone()).unwrap_or(Value::Null))
                .collect();
            out.push(Row::from_values(values))?;
        }
    }
    Ok(out)
}

/// Full outer union in columnar form: input batches are *consumed*, and
/// each output column is assembled by splicing the inputs' matching
/// columns (moved, not cloned) with `NULL` runs where a source lacks the
/// column — no per-cell work at all.
///
/// Produces exactly the batch form of [`outer_union`]'s output: same
/// schema (name-wise union, first-seen order, case-insensitive alignment),
/// same rows in the same order, bit for bit.
pub fn outer_union_columnar(batches: Vec<ColumnarBatch>, name: &str) -> Result<ColumnarBatch> {
    if batches.is_empty() {
        return ColumnarBatch::from_columns(name, Schema::of_names::<&str>(&[])?, Vec::new());
    }
    let mut schema = batches[0].schema().clone();
    for b in &batches[1..] {
        schema = schema.outer_union(b.schema());
    }
    let mut out: Vec<ColumnData> = schema
        .columns()
        .iter()
        .map(|_| ColumnData::Null { len: 0 })
        .collect();
    for b in batches {
        let len = b.len();
        let (_, b_schema, cols) = b.into_columns();
        let mut taken: Vec<Option<ColumnData>> = cols.into_iter().map(Some).collect();
        for (o, c) in schema.columns().iter().enumerate() {
            match b_schema.index_of(&c.name) {
                Some(i) => out[o].append(
                    taken[i]
                        .take()
                        .expect("schemas have distinct names, so each input column maps once"),
                ),
                None => out[o].push_nulls(len),
            }
        }
    }
    ColumnarBatch::from_columns(name, schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn ee() -> Table {
        table! {
            "EE_Student" => ["Name", "Age"];
            ["Alice", 22],
            ["Bob", 24],
        }
    }

    fn cs() -> Table {
        table! {
            "CS_Students" => ["Name", "Semester", "Age"];
            ["Alice", 5, 23],
            ["Dora", 1, 19],
        }
    }

    #[test]
    fn union_all_concatenates() {
        let a = table! { "A" => ["x"]; [1] };
        let b = table! { "B" => ["y"]; [2] };
        let u = union_all(&a, &b).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.schema().names(), vec!["x"]); // left schema wins
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let a = table! { "A" => ["x"]; [1] };
        let b = table! { "B" => ["y", "z"]; [2, 3] };
        assert!(union_all(&a, &b).is_err());
    }

    #[test]
    fn union_distinct_dedups() {
        let a = table! { "A" => ["x"]; [1], [2] };
        let b = table! { "B" => ["x"]; [2], [3] };
        assert_eq!(union_distinct(&a, &b).unwrap().len(), 3);
    }

    #[test]
    fn outer_union_aligns_by_name_and_pads() {
        let u = outer_union_pair(&ee(), &cs()).unwrap();
        assert_eq!(u.schema().names(), vec!["Name", "Age", "Semester"]);
        assert_eq!(u.len(), 4);
        // EE rows have NULL semester
        assert!(u.cell(0, 2).is_null());
        // CS rows carry their values into the aligned positions
        assert_eq!(u.cell(2, 0), &Value::text("Alice"));
        assert_eq!(u.cell(2, 1), &Value::Int(23));
        assert_eq!(u.cell(2, 2), &Value::Int(5));
    }

    #[test]
    fn outer_union_cardinality_is_sum() {
        let u = outer_union(&[&ee(), &cs(), &ee()], "U").unwrap();
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn outer_union_of_identical_schemas_is_union_all() {
        let a = ee();
        let u = outer_union_pair(&a, &a).unwrap();
        assert_eq!(u.schema().names(), vec!["Name", "Age"]);
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn outer_union_empty_input() {
        let u = outer_union(&[], "Empty").unwrap();
        assert!(u.is_empty());
        assert_eq!(u.schema().len(), 0);
    }

    #[test]
    fn columnar_outer_union_matches_row_outer_union() {
        let mixed = table! {
            "M" => ["Name", "Score"];
            ["Alice", 1.5],
            ["Eve", ()],
            [(), -0.0],
        };
        let inputs = [ee(), cs(), mixed];
        let row_result = outer_union(&inputs.iter().collect::<Vec<_>>(), "U").unwrap();
        let batches: Vec<ColumnarBatch> = inputs.iter().map(ColumnarBatch::from_table).collect();
        let col_result = outer_union_columnar(batches, "U")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(row_result.schema(), col_result.schema());
        assert_eq!(row_result.rows(), col_result.rows());
        assert_eq!(row_result.name(), col_result.name());
    }

    #[test]
    fn columnar_outer_union_empty_input() {
        let u = outer_union_columnar(Vec::new(), "Empty").unwrap();
        assert!(u.is_empty());
        assert_eq!(u.schema().len(), 0);
    }

    #[test]
    fn outer_union_is_case_insensitive_on_names() {
        let a = table! { "A" => ["Name"]; ["x"] };
        let b = table! { "B" => ["name"]; ["y"] };
        let u = outer_union_pair(&a, &b).unwrap();
        assert_eq!(u.schema().len(), 1);
        assert_eq!(u.len(), 2);
        assert_eq!(u.cell(1, 0), &Value::text("y"));
    }
}
