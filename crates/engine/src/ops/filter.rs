//! Selection (σ).

use crate::expr::Expr;
use crate::table::Table;
use crate::Result;

/// Keep the rows satisfying `predicate` (SQL `WHERE` semantics: rows whose
/// predicate evaluates to `NULL` are dropped).
pub fn select(table: &Table, predicate: &Expr) -> Result<Table> {
    let mut out = Table::empty(table.name(), table.schema().clone());
    for row in table.rows() {
        if predicate.matches(table.schema(), row)? {
            out.push(row.clone())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    #[test]
    fn filters_rows() {
        let t = table! {
            "T" => ["x"];
            [1], [2], [3],
        };
        let out = select(&t, &Expr::col("x").gt(Expr::lit(1))).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_predicate_drops_row() {
        let t = table! {
            "T" => ["x"];
            [1], [()],
        };
        let out = select(&t, &Expr::col("x").gt(Expr::lit(0))).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table! { "T" => ["x"]; [1] };
        assert!(select(&t, &Expr::col("y").gt(Expr::lit(0))).is_err());
    }
}
