//! Multi-key sorting (`ORDER BY`).

use crate::table::Table;
use crate::Result;
use std::cmp::Ordering;

/// One `ORDER BY` key: a column plus direction. `NULL`s sort last under
/// ascending order (see [`crate::value::Value::cmp_total`]) and first under
/// descending, matching common SQL implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// True for ascending (SQL default).
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            ascending: true,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            ascending: false,
        }
    }
}

/// Stable multi-key sort of a table.
pub fn sort(table: &Table, keys: &[SortKey]) -> Result<Table> {
    let resolved: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| table.resolve(&k.column).map(|i| (i, k.ascending)))
        .collect::<Result<_>>()?;
    Ok(table.sorted_by(|a, b| {
        for &(i, asc) in &resolved {
            let ord = a[i].cmp_total(&b[i]);
            let ord = if asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;
    use crate::value::Value;

    fn t() -> Table {
        table! {
            "T" => ["name", "age"];
            ["bob", 24],
            ["alice", 22],
            ["carol", 22],
            ["dave", ()],
        }
    }

    #[test]
    fn single_key_asc_nulls_last() {
        let s = sort(&t(), &[SortKey::asc("age")]).unwrap();
        assert_eq!(s.cell(0, 1), &Value::Int(22));
        assert!(s.cell(3, 1).is_null());
    }

    #[test]
    fn single_key_desc() {
        let s = sort(&t(), &[SortKey::desc("age")]).unwrap();
        assert!(s.cell(0, 1).is_null()); // NULL first under desc
        assert_eq!(s.cell(1, 1), &Value::Int(24));
    }

    #[test]
    fn multi_key_breaks_ties() {
        let s = sort(&t(), &[SortKey::asc("age"), SortKey::desc("name")]).unwrap();
        assert_eq!(s.cell(0, 0), &Value::text("carol"));
        assert_eq!(s.cell(1, 0), &Value::text("alice"));
    }

    #[test]
    fn sort_is_stable() {
        let s = sort(&t(), &[SortKey::asc("age")]).unwrap();
        // alice precedes carol: equal keys keep input order
        assert_eq!(s.cell(0, 0), &Value::text("alice"));
        assert_eq!(s.cell(1, 0), &Value::text("carol"));
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sort(&t(), &[SortKey::asc("zz")]).is_err());
    }
}
