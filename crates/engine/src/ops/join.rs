//! Join operators: nested-loop (arbitrary predicate), hash (equi-join), and
//! cross product.
//!
//! The combined schema uses the original column names where they are unique
//! across both inputs; a name occurring on both sides is disambiguated as
//! `<table>.<column>`. This mirrors SQL's qualified-name behaviour closely
//! enough for the Fuse By subset.

use crate::error::EngineError;
use crate::expr::Expr;
use crate::row::Row;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// Which tuples survive a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Only matching pairs.
    Inner,
    /// All left rows; unmatched ones padded with `NULL`s.
    Left,
    /// All rows of both sides; unmatched ones padded with `NULL`s.
    Full,
}

/// Build the combined schema, qualifying colliding names with table names.
fn joint_schema(left: &Table, right: &Table) -> Result<Schema> {
    let mut cols: Vec<Column> = Vec::with_capacity(left.schema().len() + right.schema().len());
    for c in left.schema().columns() {
        let name = if right.schema().contains(&c.name) {
            format!("{}.{}", left.name(), c.name)
        } else {
            c.name.clone()
        };
        cols.push(Column::new(name, c.ctype));
    }
    for c in right.schema().columns() {
        let name = if left.schema().contains(&c.name) {
            format!("{}.{}", right.name(), c.name)
        } else {
            c.name.clone()
        };
        cols.push(Column::new(name, c.ctype));
    }
    Schema::new(cols).map_err(|_| {
        EngineError::SchemaMismatch(format!(
            "cannot join `{}` and `{}`: qualified column names still collide",
            left.name(),
            right.name()
        ))
    })
}

fn concat_rows(l: &Row, r: &Row) -> Row {
    let mut vals = Vec::with_capacity(l.len() + r.len());
    vals.extend_from_slice(l.values());
    vals.extend_from_slice(r.values());
    Row::from_values(vals)
}

fn null_row(n: usize) -> Row {
    Row::from_values(vec![Value::Null; n])
}

/// Cross product (×) of two tables.
pub fn cross_product(left: &Table, right: &Table) -> Result<Table> {
    let schema = joint_schema(left, right)?;
    let name = format!("{}x{}", left.name(), right.name());
    let mut out = Table::empty(name, schema);
    for l in left.rows() {
        for r in right.rows() {
            out.push(concat_rows(l, r))?;
        }
    }
    Ok(out)
}

/// Nested-loop join with an arbitrary predicate evaluated over the combined
/// row. Supports inner, left outer, and full outer joins.
pub fn nested_loop_join(
    left: &Table,
    right: &Table,
    predicate: &Expr,
    kind: JoinKind,
) -> Result<Table> {
    let schema = joint_schema(left, right)?;
    let name = format!("{}⋈{}", left.name(), right.name());
    let mut out = Table::empty(name, schema.clone());
    let mut right_matched = vec![false; right.len()];
    for l in left.rows() {
        let mut matched = false;
        for (j, r) in right.rows().iter().enumerate() {
            let joined = concat_rows(l, r);
            if predicate.matches(&schema, &joined)? {
                matched = true;
                right_matched[j] = true;
                out.push(joined)?;
            }
        }
        if !matched && kind != JoinKind::Inner {
            out.push(concat_rows(l, &null_row(right.schema().len())))?;
        }
    }
    if kind == JoinKind::Full {
        for (j, r) in right.rows().iter().enumerate() {
            if !right_matched[j] {
                out.push(concat_rows(&null_row(left.schema().len()), r))?;
            }
        }
    }
    Ok(out)
}

/// Hash equi-join on `left_col = right_col`. `NULL` keys never match
/// (SQL semantics). Builds the hash table on the right input.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_col: &str,
    right_col: &str,
    kind: JoinKind,
) -> Result<Table> {
    let li = left.resolve(left_col)?;
    let ri = right.resolve(right_col)?;
    let schema = joint_schema(left, right)?;
    let name = format!("{}⋈{}", left.name(), right.name());
    let mut out = Table::empty(name, schema);

    let mut index: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(right.len());
    for (j, r) in right.rows().iter().enumerate() {
        if !r[ri].is_null() {
            index.entry(&r[ri]).or_default().push(j);
        }
    }
    let mut right_matched = vec![false; right.len()];
    for l in left.rows() {
        let key = &l[li];
        let matches = if key.is_null() { None } else { index.get(key) };
        match matches {
            Some(js) if !js.is_empty() => {
                for &j in js {
                    right_matched[j] = true;
                    out.push(concat_rows(l, &right.rows()[j]))?;
                }
            }
            _ => {
                if kind != JoinKind::Inner {
                    out.push(concat_rows(l, &null_row(right.schema().len())))?;
                }
            }
        }
    }
    if kind == JoinKind::Full {
        for (j, r) in right.rows().iter().enumerate() {
            if !right_matched[j] {
                out.push(concat_rows(&null_row(left.schema().len()), r))?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn people() -> Table {
        table! {
            "P" => ["id", "name"];
            [1, "Alice"],
            [2, "Bob"],
            [3, "Carol"],
        }
    }

    fn cities() -> Table {
        table! {
            "C" => ["pid", "city"];
            [1, "Berlin"],
            [1, "Potsdam"],
            [4, "Munich"],
        }
    }

    #[test]
    fn cross_product_cardinality() {
        let x = cross_product(&people(), &cities()).unwrap();
        assert_eq!(x.len(), 9);
        assert_eq!(x.schema().len(), 4);
    }

    #[test]
    fn qualified_names_on_collision() {
        let a = table! { "A" => ["id"]; [1] };
        let b = table! { "B" => ["id"]; [1] };
        let x = cross_product(&a, &b).unwrap();
        assert_eq!(x.schema().names(), vec!["A.id", "B.id"]);
    }

    #[test]
    fn inner_hash_join() {
        let j = hash_join(&people(), &cities(), "id", "pid", JoinKind::Inner).unwrap();
        assert_eq!(j.len(), 2); // Alice x Berlin, Alice x Potsdam
        for r in j.rows() {
            assert_eq!(r[0], Value::Int(1));
        }
    }

    #[test]
    fn left_join_pads_nulls() {
        let j = hash_join(&people(), &cities(), "id", "pid", JoinKind::Left).unwrap();
        assert_eq!(j.len(), 4); // 2 matches + Bob + Carol padded
        let bob = j
            .rows()
            .iter()
            .find(|r| r[1] == Value::text("Bob"))
            .unwrap();
        assert!(bob[3].is_null());
    }

    #[test]
    fn full_join_keeps_unmatched_right() {
        let j = hash_join(&people(), &cities(), "id", "pid", JoinKind::Full).unwrap();
        assert_eq!(j.len(), 5); // + Munich row
        let munich = j
            .rows()
            .iter()
            .find(|r| r[3] == Value::text("Munich"))
            .unwrap();
        assert!(munich[0].is_null());
    }

    #[test]
    fn null_keys_do_not_match() {
        let a = table! { "A" => ["k"]; [()], [1] };
        let b = table! { "B" => ["k"]; [()], [1] };
        let j = hash_join(&a, &b, "k", "k", JoinKind::Inner).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn nested_loop_matches_hash_join_on_equi_predicate() {
        let p = people();
        let c = cities();
        let pred = Expr::col("id").eq(Expr::col("pid"));
        for kind in [JoinKind::Inner, JoinKind::Left, JoinKind::Full] {
            let h = hash_join(&p, &c, "id", "pid", kind).unwrap();
            let n = nested_loop_join(&p, &c, &pred, kind).unwrap();
            let sort = |t: &Table| {
                let mut rows = t.rows().to_vec();
                rows.sort();
                rows
            };
            assert_eq!(sort(&h), sort(&n), "{kind:?}");
        }
    }

    #[test]
    fn nested_loop_supports_theta_join() {
        let a = table! { "A" => ["x"]; [1], [5] };
        let b = table! { "B" => ["y"]; [3] };
        let j =
            nested_loop_join(&a, &b, &Expr::col("x").lt(Expr::col("y")), JoinKind::Inner).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.cell(0, 0), &Value::Int(1));
    }
}
