//! Projection, renaming, duplicate elimination, limit.

use crate::expr::Expr;
use crate::row::Row;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::collections::HashSet;

/// Project onto the named columns, in the given order (π).
pub fn project_named<S: AsRef<str>>(table: &Table, columns: &[S]) -> Result<Table> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| table.resolve(c.as_ref()))
        .collect::<Result<_>>()?;
    let schema = table.schema().project(&indices)?;
    let rows = table.rows().iter().map(|r| r.project(&indices)).collect();
    Table::new(table.name(), schema, rows)
}

/// Generalized projection: each output column is `(alias, expression)`.
pub fn project(table: &Table, columns: &[(String, Expr)]) -> Result<Table> {
    let schema = Schema::new(
        columns
            .iter()
            .map(|(a, _)| Column::any(a.clone()))
            .collect(),
    )?;
    let mut out = Table::empty(table.name(), schema);
    for row in table.rows() {
        let values: Vec<Value> = columns
            .iter()
            .map(|(_, e)| e.eval(table.schema(), row))
            .collect::<Result<_>>()?;
        out.push(Row::from_values(values))?;
    }
    // Inference gives aliases concrete types where possible.
    out.infer_types();
    Ok(out)
}

/// Rename one column (ρ). Fails if `from` is missing or `to` collides.
pub fn rename_column(table: &Table, from: &str, to: &str) -> Result<Table> {
    let idx = table.resolve(from)?;
    let schema = table.schema().renamed(idx, to)?;
    Table::new(table.name(), schema, table.rows().to_vec())
}

/// Remove duplicate rows (SQL `SELECT DISTINCT`), keeping first occurrences
/// in order. `NULL`s compare equal to each other here, as in `DISTINCT`.
pub fn distinct(table: &Table) -> Table {
    let mut seen: HashSet<Row> = HashSet::with_capacity(table.len());
    let mut out = Table::empty(table.name(), table.schema().clone());
    for row in table.rows() {
        if seen.insert(row.clone()) {
            out.push(row.clone()).expect("same schema");
        }
    }
    out
}

/// Keep the first `n` rows.
pub fn limit(table: &Table, n: usize) -> Table {
    let rows = table.rows().iter().take(n).cloned().collect();
    Table::new(table.name(), table.schema().clone(), rows).expect("same schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn t() -> Table {
        table! {
            "T" => ["a", "b"];
            [1, "x"],
            [2, "y"],
            [1, "x"],
        }
    }

    #[test]
    fn project_named_reorders() {
        let p = project_named(&t(), &["b", "a"]).unwrap();
        assert_eq!(p.schema().names(), vec!["b", "a"]);
        assert_eq!(p.cell(0, 0), &Value::text("x"));
    }

    #[test]
    fn project_named_unknown_column() {
        assert!(project_named(&t(), &["zz"]).is_err());
    }

    #[test]
    fn project_exprs_with_alias() {
        use crate::expr::ArithOp;
        let cols = vec![(
            "a2".to_string(),
            Expr::Arith(
                ArithOp::Mul,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(2)),
            ),
        )];
        let p = project(&t(), &cols).unwrap();
        assert_eq!(p.schema().names(), vec!["a2"]);
        assert_eq!(p.cell(1, 0), &Value::Int(4));
    }

    #[test]
    fn rename_column_works_and_validates() {
        let r = rename_column(&t(), "a", "alpha").unwrap();
        assert_eq!(r.schema().names(), vec!["alpha", "b"]);
        assert!(rename_column(&t(), "zz", "x").is_err());
        assert!(rename_column(&t(), "a", "b").is_err());
    }

    #[test]
    fn distinct_keeps_first() {
        let d = distinct(&t());
        assert_eq!(d.len(), 2);
        assert_eq!(d.cell(0, 0), &Value::Int(1));
    }

    #[test]
    fn distinct_treats_nulls_equal() {
        let t = table! {
            "N" => ["x"];
            [()], [()],
        };
        assert_eq!(distinct(&t).len(), 1);
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&t(), 2).len(), 2);
        assert_eq!(limit(&t(), 99).len(), 3);
        assert_eq!(limit(&t(), 0).len(), 0);
    }
}
