//! The dynamically typed cell value used throughout HumMer.
//!
//! HumMer operates on data pulled ad hoc from heterogeneous sources, so a
//! cell is a tagged union rather than a statically typed column vector.
//! `NULL` is a first-class citizen: the whole point of data fusion is coping
//! with missing and conflicting values, and the conflict-resolution semantics
//! of the paper distinguish *missing* (no influence on similarity, skipped by
//! `COALESCE`) from *contradicting* data.

use crate::error::EngineError;
use std::cmp::Ordering;
use std::fmt;

/// A calendar date (proleptic Gregorian), the only temporal type HumMer
/// needs: the `MOST RECENT` resolution function evaluates recency through a
/// date-typed attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year, e.g. 2005.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl Date {
    /// Create a date, validating month and day ranges (month lengths are
    /// checked including leap years).
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, EngineError> {
        if !(1..=12).contains(&month) {
            return Err(EngineError::Parse(format!("month {month} out of range")));
        }
        let max_day = Self::days_in_month(year, month);
        if day == 0 || day > max_day {
            return Err(EngineError::Parse(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    fn days_in_month(year: i32, month: u8) -> u8 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if Self::is_leap(year) => 29,
            2 => 28,
            _ => 0,
        }
    }

    fn is_leap(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    /// Parse an ISO `YYYY-MM-DD` string.
    pub fn parse(s: &str) -> Result<Self, EngineError> {
        let mut parts = s.splitn(3, '-');
        let bad = || EngineError::Parse(format!("invalid date `{s}`, expected YYYY-MM-DD"));
        let year: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::new(year, month, day)
    }

    /// Days since 0000-03-01 (an arbitrary internal epoch); used for
    /// numeric distance between dates.
    pub fn ordinal(&self) -> i64 {
        // Standard civil-from-days inverse (Howard Hinnant's algorithm).
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A single cell value.
///
/// The comparison semantics follow SQL where it matters for fusion:
/// [`Value::sql_eq`] treats `NULL` as incomparable, while [`Value::cmp_total`]
/// imposes the total order needed for sorting and grouping
/// (`NULL` sorts last; numeric types compare numerically across `Int`/`Float`).
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// SQL NULL — a missing value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Convenience constructor from `&str`.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True iff the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`crate::schema::ColumnType`] this value inhabits, or `None` for `NULL`.
    pub fn column_type(&self) -> Option<crate::schema::ColumnType> {
        use crate::schema::ColumnType::*;
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(Bool),
            Value::Int(_) => Some(Int),
            Value::Float(_) => Some(Float),
            Value::Text(_) => Some(Text),
            Value::Date(_) => Some(Date),
        }
    }

    /// Numeric view of the value: `Int` and `Float` yield their magnitude,
    /// `Bool` maps to 0/1, `Date` to its ordinal day number, text parses if
    /// it looks numeric. Used by numeric distance in duplicate detection and
    /// by `SUM`/`AVG`-style resolution.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Date(d) => Some(d.ordinal() as f64),
            Value::Text(s) => s.trim().parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// Text view of the value (`NULL` yields `None`).
    ///
    /// This is the canonical string rendering used when tuples are treated
    /// as documents for TF-IDF comparison (DUMAS) — it must be stable.
    pub fn as_text(&self) -> Option<String> {
        match self {
            Value::Null => None,
            other => Some(other.to_string()),
        }
    }

    /// SQL three-valued equality: `NULL` compared with anything is `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other) == Ordering::Equal)
    }

    /// Total order over all values, for sorting/grouping:
    /// `Bool < numbers < Text < Date`, `NULL` greater than everything
    /// (i.e. NULLs sort last in ascending order). `Int` and `Float`
    /// compare numerically with each other.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Cross-type: order by type rank so sorting heterogeneous
            // columns (possible after outer union) is still deterministic.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Text(_) => 2,
            Value::Date(_) => 3,
            Value::Null => 4,
        }
    }

    /// Strict equality used for grouping keys and duplicates of *values*
    /// (not of real-world objects): `NULL` equals `NULL` here, and
    /// `Int(2) == Float(2.0)`.
    pub fn group_eq(&self, other: &Value) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }

    /// Parse a raw string (e.g. a CSV cell) into the "most specific" value:
    /// empty → `NULL`, then `Int`, `Float`, `Bool`, `Date`, else `Text`.
    pub fn infer(raw: &str) -> Value {
        let t = raw.trim();
        if t.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        match t.to_ascii_lowercase().as_str() {
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if t.len() == 10 && t.as_bytes()[4] == b'-' && t.as_bytes()[7] == b'-' {
            if let Ok(d) = Date::parse(t) {
                return Value::Date(d);
            }
        }
        Value::Text(raw.to_string())
    }
}

/// `Display` writes the canonical external form; `NULL` renders as the empty
/// string so CSV round-trips losslessly.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash alike when numerically equal because
            // group_eq treats them as equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_and_display_round_trip() {
        let d = Date::parse("2005-08-30").unwrap();
        assert_eq!(d.to_string(), "2005-08-30");
        assert_eq!(d, Date::new(2005, 8, 30).unwrap());
    }

    #[test]
    fn date_rejects_bad_days() {
        assert!(Date::new(2005, 2, 29).is_err()); // not a leap year
        assert!(Date::new(2004, 2, 29).is_ok()); // leap year
        assert!(Date::new(2005, 4, 31).is_err());
        assert!(Date::new(2005, 13, 1).is_err());
        assert!(Date::new(2005, 0, 1).is_err());
        assert!(Date::new(2005, 1, 0).is_err());
    }

    #[test]
    fn date_ordinal_is_monotone() {
        let a = Date::parse("2004-12-31").unwrap();
        let b = Date::parse("2005-01-01").unwrap();
        assert_eq!(b.ordinal() - a.ordinal(), 1);
        let c = Date::parse("2005-12-31").unwrap();
        assert_eq!(c.ordinal() - b.ordinal(), 364);
    }

    #[test]
    fn null_sorts_last() {
        let mut vs = vec![Value::Null, Value::Int(3), Value::Int(1)];
        vs.sort();
        assert_eq!(vs, vec![Value::Int(1), Value::Int(3), Value::Null]);
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Ordering::Less);
        assert!(Value::Int(2).group_eq(&Value::Float(2.0)));
    }

    #[test]
    fn int_float_hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(2));
        assert!(set.contains(&Value::Float(2.0)));
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn group_eq_null_equals_null() {
        assert!(Value::Null.group_eq(&Value::Null));
    }

    #[test]
    fn infer_types() {
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("  "), Value::Null);
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-3"), Value::Int(-3));
        assert_eq!(Value::infer("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(
            Value::infer("2005-08-30"),
            Value::Date(Date::new(2005, 8, 30).unwrap())
        );
        assert_eq!(Value::infer("abc"), Value::text("abc"));
        // ambiguous date-ish text stays text
        assert_eq!(Value::infer("2005-13-45"), Value::text("2005-13-45"));
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::text("2.5").as_f64(), Some(2.5));
        assert_eq!(Value::text("abc").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }
}
