//! In-memory tables (materialized relations).

use crate::error::EngineError;
use crate::row::Row;
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;
use crate::Result;
use std::fmt;

/// A named, materialized relation: a [`Schema`] plus rows.
///
/// `Table` is the unit of data flowing through the HumMer pipeline. All
/// engine operators consume and produce `Table`s; the cursor module
/// ([`crate::cursor`]) offers a lazy alternative mirroring the XXL library
/// the original system was built on.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given name and schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a table from rows, validating arity of every row.
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Result<Self> {
        let mut t = Table::empty(name, schema);
        t.rows.reserve(rows.len());
        for r in rows {
            t.push(r)?;
        }
        Ok(t)
    }

    /// Construct a table from string column names and a literal row list.
    /// Column types are inferred from the data (see [`Table::infer_types`]).
    pub fn from_rows<S: AsRef<str>>(
        name: impl Into<String>,
        columns: &[S],
        rows: Vec<Row>,
    ) -> Result<Self> {
        let schema = Schema::of_names(columns)?;
        let mut t = Table::new(name, schema, rows)?;
        t.infer_types();
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when registering under an alias).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows in order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after checking its arity against the schema.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.len(),
                actual: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The cell at (`row`, `col`).
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Column values as an iterator (for corpus statistics).
    pub fn column_values(&self, col: usize) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter().map(move |r| &r[col])
    }

    /// Index of a column by name, with an error naming this table.
    pub fn resolve(&self, column: &str) -> Result<usize> {
        self.schema.resolve(column, &self.name)
    }

    /// Replace each column's declared type by the least upper bound of the
    /// types actually present (ignoring `NULL`s). Columns with no non-null
    /// values keep [`ColumnType::Any`].
    pub fn infer_types(&mut self) {
        let mut types: Vec<Option<ColumnType>> = vec![None; self.schema.len()];
        for row in &self.rows {
            for (i, v) in row.values().iter().enumerate() {
                if let Some(t) = v.column_type() {
                    types[i] = Some(match types[i] {
                        None => t,
                        Some(prev) => prev.unify(t),
                    });
                }
            }
        }
        let cols: Vec<Column> = self
            .schema
            .columns()
            .iter()
            .zip(types)
            .map(|(c, t)| Column::new(c.name.clone(), t.unwrap_or(ColumnType::Any)))
            .collect();
        // Names unchanged, so construction cannot fail.
        self.schema = Schema::new(cols).expect("renaming-free schema rebuild");
    }

    /// Append a new column filled by `f(row_index, row)`.
    pub fn add_column(
        &mut self,
        column: Column,
        mut f: impl FnMut(usize, &Row) -> Value,
    ) -> Result<()> {
        let schema = self.schema.with_column(column)?;
        for (i, row) in self.rows.iter_mut().enumerate() {
            // Borrow trick: compute from the row before pushing onto it.
            let v = f(i, row);
            row.push(v);
        }
        self.schema = schema;
        Ok(())
    }

    /// A new table with rows sorted by the given comparator (stable).
    pub fn sorted_by(&self, mut cmp: impl FnMut(&Row, &Row) -> std::cmp::Ordering) -> Table {
        let mut rows = self.rows.clone();
        rows.sort_by(&mut cmp);
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Render as an ASCII grid (the demo's "browse result set" view).
    pub fn pretty(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.chars().count()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .map(|v| {
                        if v.is_null() {
                            "·".to_string()
                        } else {
                            v.to_string()
                        }
                    })
                    .collect()
            })
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Split into (name, schema, rows).
    pub fn into_parts(self) -> (String, Schema, Vec<Row>) {
        (self.name, self.schema, self.rows)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} [{} rows]",
            self.name,
            self.schema,
            self.rows.len()
        )?;
        f.write_str(&self.pretty())
    }
}

/// Build a small [`Table`] literally, for tests and examples.
///
/// ```
/// use hummer_engine::table;
/// let t = table! {
///     "Students" => ["Name", "Age"];
///     ["Alice", 22],
///     ["Bob", ()],
/// };
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.schema().names(), vec!["Name", "Age"]);
/// ```
#[macro_export]
macro_rules! table {
    ($name:expr => [$($col:expr),+ $(,)?]; $([$($v:expr),* $(,)?]),* $(,)?) => {
        $crate::table::Table::from_rows(
            $name,
            &[$($col),+],
            vec![$($crate::row![$($v),*]),*],
        ).expect("literal table is well-formed")
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn students() -> Table {
        table! {
            "Students" => ["Name", "Age"];
            ["Alice", 22],
            ["Bob", 24],
            ["Carol", ()],
        }
    }

    #[test]
    fn literal_table_macro() {
        let t = students();
        assert_eq!(t.name(), "Students");
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(0, 0), &Value::text("Alice"));
        assert!(t.cell(2, 1).is_null());
    }

    #[test]
    fn arity_checked_on_push() {
        let mut t = students();
        assert!(t.push(row!["Dave"]).is_err());
        assert!(t.push(row!["Dave", 30]).is_ok());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn type_inference() {
        let t = students();
        assert_eq!(t.schema().column(0).ctype, ColumnType::Text);
        assert_eq!(t.schema().column(1).ctype, ColumnType::Int);
    }

    #[test]
    fn inference_unifies_mixed_numeric() {
        let t = table! {
            "m" => ["x"];
            [1],
            [2.5],
        };
        assert_eq!(t.schema().column(0).ctype, ColumnType::Float);
    }

    #[test]
    fn all_null_column_stays_any() {
        let t = table! {
            "n" => ["x"];
            [()],
        };
        assert_eq!(t.schema().column(0).ctype, ColumnType::Any);
    }

    #[test]
    fn add_column_appends_values() {
        let mut t = students();
        t.add_column(Column::new("rowid", ColumnType::Int), |i, _| {
            Value::Int(i as i64)
        })
        .unwrap();
        assert_eq!(t.schema().names(), vec!["Name", "Age", "rowid"]);
        assert_eq!(t.cell(2, 2), &Value::Int(2));
    }

    #[test]
    fn add_column_rejects_duplicate_name() {
        let mut t = students();
        assert!(t
            .add_column(Column::any("name"), |_, _| Value::Null)
            .is_err());
    }

    #[test]
    fn pretty_renders_nulls_as_dot() {
        let p = students().pretty();
        assert!(p.contains("Alice"));
        assert!(p.contains('·'));
        assert!(p.starts_with('+'));
    }

    #[test]
    fn sorted_by_is_stable_and_nondestructive() {
        let t = students();
        let s = t.sorted_by(|a, b| a[1].cmp_total(&b[1]));
        assert_eq!(s.cell(0, 0), &Value::text("Alice"));
        assert!(s.cell(2, 1).is_null()); // NULL age sorts last
        assert_eq!(t.cell(0, 0), &Value::text("Alice")); // original untouched
    }

    #[test]
    fn resolve_names_table_in_error() {
        let e = students().resolve("GPA").unwrap_err();
        assert!(e.to_string().contains("Students"));
    }
}
