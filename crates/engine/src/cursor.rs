//! Lazy, iterator-based operators — the XXL "cursor algebra" face of the
//! engine.
//!
//! The original HumMer runs on XXL, a Java library whose operators are
//! *cursors*: demand-driven iterators over tuples. This module mirrors that
//! style on top of Rust's `Iterator`, which is useful when a pipeline stage
//! should not materialize its input (e.g. streaming a large outer union into
//! duplicate detection's blocking phase).
//!
//! A [`Cursor`] owns its schema (tuples flowing through are plain [`Row`]s)
//! and can be materialized into a [`Table`] at any point with
//! [`Cursor::collect_table`].

use crate::expr::Expr;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A schema-carrying stream of rows.
pub struct Cursor<'a> {
    schema: Schema,
    iter: Box<dyn Iterator<Item = Row> + 'a>,
}

impl<'a> Cursor<'a> {
    /// A cursor scanning a table (clones rows on demand).
    pub fn scan(table: &'a Table) -> Cursor<'a> {
        Cursor {
            schema: table.schema().clone(),
            iter: Box::new(table.rows().iter().cloned()),
        }
    }

    /// A cursor over owned rows.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Cursor<'static> {
        Cursor {
            schema,
            iter: Box::new(rows.into_iter()),
        }
    }

    /// The stream's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Lazy selection. Rows failing (or erroring in) the predicate are
    /// dropped; evaluation errors surface at `collect_table` time as missing
    /// rows would be silent, so instead the predicate is pre-resolved:
    /// an unknown column fails immediately.
    pub fn filter(self, predicate: Expr) -> Result<Cursor<'a>> {
        // Validate references eagerly for early error reporting.
        for c in predicate.columns() {
            self.schema.resolve(c, "<cursor>")?;
        }
        let schema = self.schema.clone();
        let iter = self
            .iter
            .filter(move |row| predicate.matches(&schema, row).unwrap_or(false));
        Ok(Cursor {
            schema: self.schema,
            iter: Box::new(iter),
        })
    }

    /// Lazy projection onto named columns.
    pub fn project<S: AsRef<str>>(self, columns: &[S]) -> Result<Cursor<'a>> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.resolve(c.as_ref(), "<cursor>"))
            .collect::<Result<_>>()?;
        let schema = self.schema.project(&indices)?;
        let iter = self.iter.map(move |row| row.project(&indices));
        Ok(Cursor {
            schema,
            iter: Box::new(iter),
        })
    }

    /// Lazy concatenation (UNION ALL by position); the other cursor's rows
    /// follow this one's. Arity must match.
    pub fn chain(self, other: Cursor<'a>) -> Result<Cursor<'a>> {
        if self.schema.len() != other.schema.len() {
            return Err(crate::error::EngineError::SchemaMismatch(format!(
                "cursor chain arity mismatch: {} vs {}",
                self.schema.len(),
                other.schema.len()
            )));
        }
        Ok(Cursor {
            schema: self.schema,
            iter: Box::new(self.iter.chain(other.iter)),
        })
    }

    /// Lazy outer-union alignment of this cursor into a wider target schema:
    /// columns are matched by name, missing ones padded with `NULL`.
    pub fn align_to(self, target: &Schema) -> Cursor<'a> {
        let mapping: Vec<Option<usize>> = target
            .columns()
            .iter()
            .map(|c| self.schema.index_of(&c.name))
            .collect();
        let iter = self.iter.map(move |row| {
            mapping
                .iter()
                .map(|m| m.map(|i| row[i].clone()).unwrap_or(Value::Null))
                .collect()
        });
        Cursor {
            schema: target.clone(),
            iter: Box::new(iter),
        }
    }

    /// Take at most `n` rows.
    pub fn limit(self, n: usize) -> Cursor<'a> {
        Cursor {
            schema: self.schema,
            iter: Box::new(self.iter.take(n)),
        }
    }

    /// Materialize into a table.
    pub fn collect_table(self, name: &str) -> Result<Table> {
        let mut t = Table::empty(name, self.schema);
        for row in self.iter {
            t.push(row)?;
        }
        Ok(t)
    }
}

impl Iterator for Cursor<'_> {
    type Item = Row;
    fn next(&mut self) -> Option<Row> {
        self.iter.next()
    }
}

/// Full outer union of several cursors, streamed: computes the union schema
/// first (cheap — schemas only), then lazily aligns and chains the inputs.
pub fn outer_union_cursors<'a>(cursors: Vec<Cursor<'a>>) -> Cursor<'a> {
    let mut schema = Schema::of_names::<&str>(&[]).expect("empty schema");
    for c in &cursors {
        schema = schema.outer_union(c.schema());
    }
    let mut aligned: Option<Cursor<'a>> = None;
    for c in cursors {
        let a = c.align_to(&schema);
        aligned = Some(match aligned {
            None => a,
            Some(prev) => prev.chain(a).expect("aligned cursors share schema"),
        });
    }
    aligned.unwrap_or_else(|| Cursor::from_rows(schema, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn t() -> Table {
        table! {
            "T" => ["x", "y"];
            [1, "a"],
            [2, "b"],
            [3, "c"],
        }
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let t = t();
        let out = Cursor::scan(&t)
            .filter(Expr::col("x").gt(Expr::lit(1)))
            .unwrap()
            .project(&["y"])
            .unwrap()
            .collect_table("out")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().names(), vec!["y"]);
    }

    #[test]
    fn filter_validates_columns_eagerly() {
        let t = t();
        assert!(Cursor::scan(&t)
            .filter(Expr::col("zz").gt(Expr::lit(1)))
            .is_err());
    }

    #[test]
    fn limit_is_lazy_and_bounded() {
        let t = t();
        let out = Cursor::scan(&t).limit(2).collect_table("out").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn outer_union_cursors_aligns() {
        let a = table! { "A" => ["Name", "Age"]; ["x", 1] };
        let b = table! { "B" => ["Name", "City"]; ["y", "Berlin"] };
        let u = outer_union_cursors(vec![Cursor::scan(&a), Cursor::scan(&b)])
            .collect_table("U")
            .unwrap();
        assert_eq!(u.schema().names(), vec!["Name", "Age", "City"]);
        assert_eq!(u.len(), 2);
        assert!(u.cell(0, 2).is_null());
        assert!(u.cell(1, 1).is_null());
        assert_eq!(u.cell(1, 2), &Value::text("Berlin"));
    }

    #[test]
    fn outer_union_cursors_empty() {
        let u = outer_union_cursors(vec![]).collect_table("U").unwrap();
        assert!(u.is_empty());
    }

    #[test]
    fn cursor_matches_materialized_outer_union() {
        let a = table! { "A" => ["p", "q"]; [1, 2], [3, 4] };
        let b = table! { "B" => ["q", "r"]; [5, 6] };
        let lazy = outer_union_cursors(vec![Cursor::scan(&a), Cursor::scan(&b)])
            .collect_table("U")
            .unwrap();
        let eager = crate::ops::outer_union(&[&a, &b], "U").unwrap();
        assert_eq!(lazy.rows(), eager.rows());
        assert_eq!(lazy.schema().names(), eager.schema().names());
    }

    #[test]
    fn chain_arity_mismatch_errors() {
        let a = table! { "A" => ["x"]; [1] };
        let b = table! { "B" => ["x", "y"]; [1, 2] };
        assert!(Cursor::scan(&a).chain(Cursor::scan(&b)).is_err());
    }
}
