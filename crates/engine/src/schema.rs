//! Relation schemas: ordered, named, typed columns.

use crate::error::EngineError;
use std::collections::HashMap;
use std::fmt;

/// The declared type of a column.
///
/// Sources pulled in ad hoc are often untyped (CSV, screen-scraped tables),
/// so [`ColumnType::Any`] marks a column whose cells may mix types; the
/// engine's operators treat `Any` as compatible with everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Calendar date.
    Date,
    /// Dynamically typed (heterogeneous or unknown).
    Any,
}

impl ColumnType {
    /// Whether a value of type `other` may be stored in a column of `self`.
    pub fn accepts(&self, other: ColumnType) -> bool {
        *self == ColumnType::Any
            || *self == other
            // Ints are acceptable in float columns (numeric widening).
            || (*self == ColumnType::Float && other == ColumnType::Int)
    }

    /// The least upper bound of two types: equal types stay, Int∪Float =
    /// Float, anything else degrades to `Any`.
    pub fn unify(self, other: ColumnType) -> ColumnType {
        use ColumnType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            (Any, t) | (t, Any) => t,
            _ => Any,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "BOOL",
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
            ColumnType::Date => "DATE",
            ColumnType::Any => "ANY",
        };
        f.write_str(s)
    }
}

/// A single column: a name plus a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name. Matching is case-insensitive but the original case is
    /// preserved for display.
    pub name: String,
    /// Declared type.
    pub ctype: ColumnType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, ctype: ColumnType) -> Self {
        Column {
            name: name.into(),
            ctype,
        }
    }

    /// A dynamically typed column (the common case for ad-hoc sources).
    pub fn any(name: impl Into<String>) -> Self {
        Column::new(name, ColumnType::Any)
    }
}

/// An ordered list of columns with O(1) name lookup.
///
/// Column names are unique per schema (case-insensitively); HumMer's
/// transformation phase guarantees this by renaming matched attributes to the
/// preferred schema's names *before* the outer union.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    /// Lowercased name → index.
    index: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from columns, rejecting duplicate names.
    pub fn new(columns: Vec<Column>) -> Result<Self, EngineError> {
        let mut index = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if index.insert(c.name.to_ascii_lowercase(), i).is_some() {
                return Err(EngineError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns, index })
    }

    /// Build a schema of dynamically typed columns from names.
    pub fn of_names<S: AsRef<str>>(names: &[S]) -> Result<Self, EngineError> {
        Schema::new(names.iter().map(|n| Column::any(n.as_ref())).collect())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Index of a column, or an [`EngineError::UnknownColumn`] naming
    /// `relation` in the message.
    pub fn resolve(&self, name: &str, relation: &str) -> Result<usize, EngineError> {
        self.index_of(name)
            .ok_or_else(|| EngineError::UnknownColumn {
                name: name.to_string(),
                relation: relation.to_string(),
            })
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// True iff a column with this (case-insensitive) name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// A new schema with one column appended.
    pub fn with_column(&self, col: Column) -> Result<Schema, EngineError> {
        let mut cols = self.columns.clone();
        cols.push(col);
        Schema::new(cols)
    }

    /// A new schema with the column at `idx` renamed.
    pub fn renamed(&self, idx: usize, new_name: impl Into<String>) -> Result<Schema, EngineError> {
        let mut cols = self.columns.clone();
        cols[idx].name = new_name.into();
        Schema::new(cols)
    }

    /// Projection of this schema onto the given column indices
    /// (duplicates allowed only if names stay unique — projection of the
    /// same column twice fails with [`EngineError::DuplicateColumn`]).
    pub fn project(&self, indices: &[usize]) -> Result<Schema, EngineError> {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// The *outer-union schema* of two schemas: all columns of `self` in
    /// order, then the columns of `other` whose names are new. Shared
    /// columns unify their types. This is the schema produced by HumMer's
    /// data-transformation step after renaming.
    pub fn outer_union(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        let mut index: HashMap<String, usize> = self.index.clone();
        for c in &other.columns {
            let key = c.name.to_ascii_lowercase();
            match index.get(&key) {
                Some(&i) => {
                    cols[i].ctype = cols[i].ctype.unify(c.ctype);
                }
                None => {
                    index.insert(key, cols.len());
                    cols.push(c.clone());
                }
            }
        }
        // Names are unique by construction.
        Schema {
            columns: cols,
            index,
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ctype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of_names(&["a", "b", "c"]).unwrap()
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = abc();
        assert_eq!(s.index_of("A"), Some(0));
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.contains("C"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::of_names(&["x", "X"]).is_err());
    }

    #[test]
    fn resolve_reports_relation() {
        let err = abc().resolve("zz", "T").unwrap_err();
        assert!(err.to_string().contains("zz"));
        assert!(err.to_string().contains("T"));
    }

    #[test]
    fn outer_union_merges_by_name() {
        let left = Schema::new(vec![
            Column::new("name", ColumnType::Text),
            Column::new("age", ColumnType::Int),
        ])
        .unwrap();
        let right = Schema::new(vec![
            Column::new("Age", ColumnType::Float),
            Column::new("city", ColumnType::Text),
        ])
        .unwrap();
        let u = left.outer_union(&right);
        assert_eq!(u.names(), vec!["name", "age", "city"]);
        // Int ∪ Float = Float
        assert_eq!(u.column(1).ctype, ColumnType::Float);
    }

    #[test]
    fn outer_union_degrades_to_any() {
        let l = Schema::new(vec![Column::new("x", ColumnType::Text)]).unwrap();
        let r = Schema::new(vec![Column::new("x", ColumnType::Int)]).unwrap();
        assert_eq!(l.outer_union(&r).column(0).ctype, ColumnType::Any);
    }

    #[test]
    fn type_unify_and_accepts() {
        assert_eq!(ColumnType::Int.unify(ColumnType::Float), ColumnType::Float);
        assert_eq!(ColumnType::Any.unify(ColumnType::Text), ColumnType::Text);
        assert!(ColumnType::Float.accepts(ColumnType::Int));
        assert!(ColumnType::Any.accepts(ColumnType::Date));
        assert!(!ColumnType::Int.accepts(ColumnType::Text));
    }

    #[test]
    fn project_and_rename() {
        let s = abc();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        let r = s.renamed(1, "bb").unwrap();
        assert_eq!(r.names(), vec!["a", "bb", "c"]);
        assert!(s.project(&[0, 0]).is_err());
    }

    #[test]
    fn display_formats() {
        let s = Schema::new(vec![
            Column::new("n", ColumnType::Text),
            Column::new("a", ColumnType::Int),
        ])
        .unwrap();
        assert_eq!(s.to_string(), "(n TEXT, a INT)");
    }
}
