//! Rows (tuples) of a relation.

use crate::value::Value;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A tuple: an ordered list of [`Value`]s matching some schema.
///
/// `Row` is a thin newtype over `Vec<Value>`; it exists so that fusion-layer
/// code can speak in terms of tuples and so invariants (arity checks) have a
/// single home in [`crate::table::Table::push`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row(Vec::new())
    }

    /// A row from values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the row carries no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at `idx`, or `None` out of bounds.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Append a value.
    pub fn push(&mut self, v: Value) {
        self.0.push(v);
    }

    /// Number of non-`NULL` values — the "completeness" of a tuple, used by
    /// fusion quality metrics.
    pub fn non_null_count(&self) -> usize {
        self.0.iter().filter(|v| !v.is_null()).count()
    }

    /// Concatenation of all non-`NULL` values separated by single spaces.
    ///
    /// This is the "tuple as one string" document representation DUMAS feeds
    /// to TF-IDF when sniffing duplicates across unaligned tables.
    pub fn as_document(&self) -> String {
        let mut out = String::new();
        for v in &self.0 {
            if let Some(t) = v.as_text() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&t);
            }
        }
        out
    }

    /// A new row projected onto `indices` (cloning the selected values).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Consume into the underlying vector.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl IndexMut<usize> for Row {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        &mut self.0[idx]
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl IntoIterator for Row {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if v.is_null() {
                write!(f, "NULL")?;
            } else {
                write!(f, "{v}")?;
            }
        }
        write!(f, "]")
    }
}

/// Build a [`Row`] from a list of expressions convertible to [`Value`].
///
/// ```
/// use hummer_engine::row;
/// let r = row![1, "Alice", 3.5, ()];
/// assert_eq!(r.len(), 4);
/// assert!(r[3].is_null());
/// ```
#[macro_export]
macro_rules! row {
    () => { $crate::row::Row::new() };
    ($($v:expr),+ $(,)?) => {
        $crate::row::Row::from_values(vec![$($crate::IntoValue::into_value($v)),+])
    };
}

/// Conversion helper backing the [`row!`] macro: like `Into<Value>` but also
/// maps `()` to `NULL` so literal rows can spell missing values.
pub trait IntoValue {
    /// Convert into a [`Value`].
    fn into_value(self) -> Value;
}

impl IntoValue for () {
    fn into_value(self) -> Value {
        Value::Null
    }
}

impl<T: Into<Value>> IntoValue for T {
    fn into_value(self) -> Value {
        self.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_and_nulls() {
        let r = row![1, "x", ()];
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::text("x"));
        assert!(r[2].is_null());
    }

    #[test]
    fn document_skips_nulls() {
        let r = row!["John Doe", (), 42];
        assert_eq!(r.as_document(), "John Doe 42");
    }

    #[test]
    fn document_of_all_null_row_is_empty() {
        let r = row![(), ()];
        assert_eq!(r.as_document(), "");
    }

    #[test]
    fn non_null_count() {
        assert_eq!(row![1, (), 3].non_null_count(), 2);
        assert_eq!(row![].non_null_count(), 0);
    }

    #[test]
    fn project_clones_selection() {
        let r = row![10, 20, 30];
        assert_eq!(r.project(&[2, 0]), row![30, 10]);
    }

    #[test]
    fn display_marks_null() {
        assert_eq!(row![1, ()].to_string(), "[1, NULL]");
    }
}
