//! Columnar batches: per-column typed storage with **bit-exact** row ⇄
//! column conversion.
//!
//! The row-oriented [`Table`] chases a pointer per cell; the hot loops of
//! the fusion pipeline (pair scoring, the outer-union transform) want
//! contiguous typed arrays they can sweep linearly. A [`ColumnarBatch`]
//! stores one [`ColumnData`] per schema column:
//!
//! * a column whose non-null cells all inhabit one [`ColumnType`] becomes a
//!   dense typed vector (`Vec<i64>`, `Vec<f64>`, `Vec<String>`, …) plus a
//!   validity mask distinguishing `NULL` from a real value (in particular a
//!   real *empty string* from a null Text cell);
//! * an all-`NULL` column is just a length;
//! * a mixed-type column falls back to the row representation
//!   ([`ColumnData::Mixed`]) so no [`Value`] is ever coerced.
//!
//! ## Byte-identity contract
//!
//! `ColumnarBatch::from_rows(t.into_parts()).into_table()` reproduces the
//! original table **bit for bit**: float cells keep their exact bit
//! patterns (`-0.0` and NaN payloads included, per the codec conventions of
//! the durable store), `Int` cells stay `Int` even when the schema column
//! unified to `Float`, and validity masks round-trip `NULL`s exactly.
//! `tests/columnar_properties.rs` property-tests this over adversarial
//! values.

use crate::error::EngineError;
use crate::row::Row;
use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::value::{Date, Value};
use crate::Result;

/// Which physical layout the pipeline's hot paths run over.
///
/// Both layouts produce **bit-identical** output — the columnar kernels are
/// refactorings of the row loops with the same arithmetic in the same
/// order — so this is purely a performance knob. The row path is kept as
/// the executable reference implementation the equivalence tests and
/// `exp13_columnar` compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionLayout {
    /// Row-at-a-time loops over `Vec<Row>` (the reference path).
    Row,
    /// Vectorized sweeps over [`ColumnarBatch`]-style typed columns.
    #[default]
    Columnar,
}

/// Placeholder stored in the invalid (null) slots of a Date column.
const DATE_PLACEHOLDER: Date = Date {
    year: 1970,
    month: 1,
    day: 1,
};

/// One column of a [`ColumnarBatch`]: typed dense storage with a validity
/// mask, or the row-value fallback for heterogeneous columns.
///
/// Invalid (null) slots of typed variants hold an arbitrary placeholder
/// (`false` / `0` / `0.0` / `""` / 1970-01-01); only slots whose validity
/// bit is set carry data.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Every cell is `NULL`; only the length is stored.
    Null {
        /// Number of (all-null) cells.
        len: usize,
    },
    /// All non-null cells are booleans.
    Bool {
        /// Cell payloads (placeholder where invalid).
        values: Vec<bool>,
        /// `true` where the cell is non-null.
        validity: Vec<bool>,
    },
    /// All non-null cells are 64-bit integers.
    Int {
        /// Cell payloads (placeholder where invalid).
        values: Vec<i64>,
        /// `true` where the cell is non-null.
        validity: Vec<bool>,
    },
    /// All non-null cells are 64-bit floats (exact bit patterns preserved,
    /// including `-0.0` and NaN payloads).
    Float {
        /// Cell payloads (placeholder where invalid).
        values: Vec<f64>,
        /// `true` where the cell is non-null.
        validity: Vec<bool>,
    },
    /// All non-null cells are text. The validity mask is what tells a null
    /// cell apart from a genuine empty string.
    Text {
        /// Cell payloads (placeholder where invalid).
        values: Vec<String>,
        /// `true` where the cell is non-null.
        validity: Vec<bool>,
    },
    /// All non-null cells are dates.
    Date {
        /// Cell payloads (placeholder where invalid).
        values: Vec<Date>,
        /// `true` where the cell is non-null.
        validity: Vec<bool>,
    },
    /// Heterogeneous column: cells kept verbatim as [`Value`]s.
    Mixed {
        /// The cells, exactly as they appeared in the rows.
        values: Vec<Value>,
    },
}

/// Split values into a typed payload vector and a validity mask, using
/// `extract` for non-null cells and `placeholder()` for null slots.
fn build_typed<T>(
    values: Vec<Value>,
    mut extract: impl FnMut(Value) -> T,
    mut placeholder: impl FnMut() -> T,
) -> (Vec<T>, Vec<bool>) {
    let mut out = Vec::with_capacity(values.len());
    let mut validity = Vec::with_capacity(values.len());
    for v in values {
        if v.is_null() {
            out.push(placeholder());
            validity.push(false);
        } else {
            out.push(extract(v));
            validity.push(true);
        }
    }
    (out, validity)
}

impl ColumnData {
    /// Build a column from row cells, choosing the densest representation:
    /// all-null → [`ColumnData::Null`], uniformly typed → the typed
    /// variant, anything else → [`ColumnData::Mixed`] (values verbatim).
    pub fn from_values(values: Vec<Value>) -> ColumnData {
        let mut kind: Option<ColumnType> = None;
        let mut uniform = true;
        for v in &values {
            match (kind, v.column_type()) {
                (_, None) => {}
                (None, Some(t)) => kind = Some(t),
                (Some(k), Some(t)) if k == t => {}
                _ => {
                    uniform = false;
                    break;
                }
            }
        }
        if !uniform {
            return ColumnData::Mixed { values };
        }
        match kind {
            None => ColumnData::Null { len: values.len() },
            Some(ColumnType::Bool) => {
                let (values, validity) = build_typed(
                    values,
                    |v| match v {
                        Value::Bool(b) => b,
                        _ => unreachable!("uniform Bool column"),
                    },
                    || false,
                );
                ColumnData::Bool { values, validity }
            }
            Some(ColumnType::Int) => {
                let (values, validity) = build_typed(
                    values,
                    |v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("uniform Int column"),
                    },
                    || 0,
                );
                ColumnData::Int { values, validity }
            }
            Some(ColumnType::Float) => {
                let (values, validity) = build_typed(
                    values,
                    |v| match v {
                        Value::Float(f) => f,
                        _ => unreachable!("uniform Float column"),
                    },
                    || 0.0,
                );
                ColumnData::Float { values, validity }
            }
            Some(ColumnType::Text) => {
                let (values, validity) = build_typed(
                    values,
                    |v| match v {
                        Value::Text(s) => s,
                        _ => unreachable!("uniform Text column"),
                    },
                    String::new,
                );
                ColumnData::Text { values, validity }
            }
            Some(ColumnType::Date) => {
                let (values, validity) = build_typed(
                    values,
                    |v| match v {
                        Value::Date(d) => d,
                        _ => unreachable!("uniform Date column"),
                    },
                    || DATE_PLACEHOLDER,
                );
                ColumnData::Date { values, validity }
            }
            Some(ColumnType::Any) => unreachable!("Value::column_type never reports Any"),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Null { len } => *len,
            ColumnData::Bool { values, .. } => values.len(),
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Text { values, .. } => values.len(),
            ColumnData::Date { values, .. } => values.len(),
            ColumnData::Mixed { values } => values.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            ColumnData::Null { len } => *len,
            ColumnData::Bool { validity, .. }
            | ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Text { validity, .. }
            | ColumnData::Date { validity, .. } => validity.iter().filter(|v| !**v).count(),
            ColumnData::Mixed { values } => values.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// The cell at `i`, reconstructed as a [`Value`] (clones text).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Null { len } => {
                assert!(i < *len, "column index {i} out of bounds ({len})");
                Value::Null
            }
            ColumnData::Bool { values, validity } => {
                if validity[i] {
                    Value::Bool(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Int { values, validity } => {
                if validity[i] {
                    Value::Int(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Float { values, validity } => {
                if validity[i] {
                    Value::Float(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Text { values, validity } => {
                if validity[i] {
                    Value::Text(values[i].clone())
                } else {
                    Value::Null
                }
            }
            ColumnData::Date { values, validity } => {
                if validity[i] {
                    Value::Date(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Mixed { values } => values[i].clone(),
        }
    }

    /// Consume the column back into row cells, bit-exactly.
    pub fn into_values(self) -> Vec<Value> {
        fn rebuild<T>(
            values: Vec<T>,
            validity: Vec<bool>,
            wrap: impl Fn(T) -> Value,
        ) -> Vec<Value> {
            values
                .into_iter()
                .zip(validity)
                .map(|(v, ok)| if ok { wrap(v) } else { Value::Null })
                .collect()
        }
        match self {
            ColumnData::Null { len } => vec![Value::Null; len],
            ColumnData::Bool { values, validity } => rebuild(values, validity, Value::Bool),
            ColumnData::Int { values, validity } => rebuild(values, validity, Value::Int),
            ColumnData::Float { values, validity } => rebuild(values, validity, Value::Float),
            ColumnData::Text { values, validity } => rebuild(values, validity, Value::Text),
            ColumnData::Date { values, validity } => rebuild(values, validity, Value::Date),
            ColumnData::Mixed { values } => values,
        }
    }

    /// Append `n` null cells.
    pub fn push_nulls(&mut self, n: usize) {
        fn pad<T>(
            values: &mut Vec<T>,
            validity: &mut Vec<bool>,
            n: usize,
            mut ph: impl FnMut() -> T,
        ) {
            values.extend(std::iter::repeat_with(&mut ph).take(n));
            validity.extend(std::iter::repeat_n(false, n));
        }
        match self {
            ColumnData::Null { len } => *len += n,
            ColumnData::Bool { values, validity } => pad(values, validity, n, || false),
            ColumnData::Int { values, validity } => pad(values, validity, n, || 0),
            ColumnData::Float { values, validity } => pad(values, validity, n, || 0.0),
            ColumnData::Text { values, validity } => pad(values, validity, n, String::new),
            ColumnData::Date { values, validity } => pad(values, validity, n, || DATE_PLACEHOLDER),
            ColumnData::Mixed { values } => values.extend(std::iter::repeat_n(Value::Null, n)),
        }
    }

    /// Append another column's cells after this column's, reconciling
    /// representations: matching typed variants extend in place, `Null`
    /// runs become validity gaps in the other side's representation, and a
    /// genuine variant mismatch degrades (losslessly) to
    /// [`ColumnData::Mixed`].
    pub fn append(&mut self, other: ColumnData) {
        use ColumnData::*;
        let merged = match (std::mem::replace(self, Null { len: 0 }), other) {
            (Null { len: a }, Null { len: b }) => Null { len: a + b },
            (Null { len: a }, mut typed) if !matches!(typed, Mixed { .. }) => {
                // Prepend a null run: rebuild the typed column with `a`
                // leading invalid slots.
                let mut lead = match &typed {
                    Bool { .. } => Bool {
                        values: Vec::new(),
                        validity: Vec::new(),
                    },
                    Int { .. } => Int {
                        values: Vec::new(),
                        validity: Vec::new(),
                    },
                    Float { .. } => Float {
                        values: Vec::new(),
                        validity: Vec::new(),
                    },
                    Text { .. } => Text {
                        values: Vec::new(),
                        validity: Vec::new(),
                    },
                    Date { .. } => Date {
                        values: Vec::new(),
                        validity: Vec::new(),
                    },
                    Null { .. } | Mixed { .. } => unreachable!("guarded by the match arm"),
                };
                lead.push_nulls(a);
                lead.extend_same_variant(&mut typed);
                lead
            }
            (mut typed, Null { len: b }) => {
                typed.push_nulls(b);
                typed
            }
            (mut a, mut b) if a.same_typed_variant(&b) => {
                a.extend_same_variant(&mut b);
                a
            }
            (a, b) => {
                // Heterogeneous: fall back to row values, verbatim.
                let mut values = a.into_values();
                values.extend(b.into_values());
                Mixed { values }
            }
        };
        *self = merged;
    }

    /// Whether `self` and `other` are the same *typed* variant (Mixed and
    /// Null never count).
    fn same_typed_variant(&self, other: &ColumnData) -> bool {
        use ColumnData::*;
        matches!(
            (self, other),
            (Bool { .. }, Bool { .. })
                | (Int { .. }, Int { .. })
                | (Float { .. }, Float { .. })
                | (Text { .. }, Text { .. })
                | (Date { .. }, Date { .. })
        )
    }

    /// Move `other`'s payload after `self`'s; both must be the same typed
    /// variant.
    fn extend_same_variant(&mut self, other: &mut ColumnData) {
        use ColumnData::*;
        match (self, other) {
            (
                Bool {
                    values: av,
                    validity: am,
                },
                Bool {
                    values: bv,
                    validity: bm,
                },
            ) => {
                av.append(bv);
                am.append(bm);
            }
            (
                Int {
                    values: av,
                    validity: am,
                },
                Int {
                    values: bv,
                    validity: bm,
                },
            ) => {
                av.append(bv);
                am.append(bm);
            }
            (
                Float {
                    values: av,
                    validity: am,
                },
                Float {
                    values: bv,
                    validity: bm,
                },
            ) => {
                av.append(bv);
                am.append(bm);
            }
            (
                Text {
                    values: av,
                    validity: am,
                },
                Text {
                    values: bv,
                    validity: bm,
                },
            ) => {
                av.append(bv);
                am.append(bm);
            }
            (
                Date {
                    values: av,
                    validity: am,
                },
                Date {
                    values: bv,
                    validity: bm,
                },
            ) => {
                av.append(bv);
                am.append(bm);
            }
            _ => unreachable!("extend_same_variant requires matching typed variants"),
        }
    }
}

/// A table in columnar layout: a schema plus one [`ColumnData`] per column,
/// all of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    name: String,
    schema: Schema,
    len: usize,
    columns: Vec<ColumnData>,
}

impl ColumnarBatch {
    /// Build a batch from a row table, cloning each cell exactly once.
    pub fn from_table(table: &Table) -> ColumnarBatch {
        let len = table.len();
        let columns = (0..table.schema().len())
            .map(|c| ColumnData::from_values(table.rows().iter().map(|r| r[c].clone()).collect()))
            .collect();
        ColumnarBatch {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            len,
            columns,
        }
    }

    /// Build a batch by *consuming* rows (cells are moved, not cloned).
    /// Errors on a row whose arity does not match the schema.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<ColumnarBatch> {
        let width = schema.len();
        let len = rows.len();
        let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(len)).collect();
        for row in rows {
            if row.len() != width {
                return Err(EngineError::ArityMismatch {
                    expected: width,
                    actual: row.len(),
                });
            }
            for (col, v) in cols.iter_mut().zip(row.into_values()) {
                col.push(v);
            }
        }
        Ok(ColumnarBatch {
            name: name.into(),
            schema,
            len,
            columns: cols.into_iter().map(ColumnData::from_values).collect(),
        })
    }

    /// Assemble a batch from already-built columns. Errors when the column
    /// count does not match the schema or the columns disagree on length.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<ColumnarBatch> {
        if columns.len() != schema.len() {
            return Err(EngineError::SchemaMismatch(format!(
                "batch has {} columns but the schema defines {}",
                columns.len(),
                schema.len()
            )));
        }
        let len = columns.first().map(ColumnData::len).unwrap_or(0);
        if let Some(bad) = columns.iter().find(|c| c.len() != len) {
            return Err(EngineError::SchemaMismatch(format!(
                "ragged batch: column lengths {} vs {}",
                len,
                bad.len()
            )));
        }
        Ok(ColumnarBatch {
            name: name.into(),
            schema,
            len,
            columns,
        })
    }

    /// Batch name (carried into [`ColumnarBatch::into_table`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// The cell at (`row`, `col`), reconstructed as a [`Value`].
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Decompose into name, schema, and columns (for column-wise assembly,
    /// e.g. the outer-union transform).
    pub fn into_columns(self) -> (String, Schema, Vec<ColumnData>) {
        (self.name, self.schema, self.columns)
    }

    /// Transpose back into a row [`Table`], bit-exactly. Cells are *moved*
    /// out of the columns — no clone.
    pub fn into_table(self) -> Result<Table> {
        let mut iters: Vec<std::vec::IntoIter<Value>> = self
            .columns
            .into_iter()
            .map(|c| c.into_values().into_iter())
            .collect();
        let rows: Vec<Row> = (0..self.len)
            .map(|_| {
                Row::from_values(
                    iters
                        .iter_mut()
                        .map(|it| it.next().expect("columns are length-checked"))
                        .collect(),
                )
            })
            .collect();
        Table::new(self.name, self.schema, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    /// Bit-exact equality of two values (plain `==` treats all NaNs alike
    /// and `-0.0 == 0.0`; the codec contract is stricter).
    fn bits_equal(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }

    fn roundtrip(t: &Table) {
        let batch = ColumnarBatch::from_table(t);
        assert_eq!(batch.len(), t.len());
        let back = batch.into_table().unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.schema(), t.schema());
        for (a, b) in t.rows().iter().zip(back.rows()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                assert!(bits_equal(x, y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn typed_columns_round_trip() {
        roundtrip(&table! {
            "T" => ["name", "age", "score"];
            ["Ada", 36, 1.5],
            ["", 0, -0.0],
            [(), (), ()],
        });
    }

    #[test]
    fn adversarial_floats_keep_their_bits() {
        let quiet_nan = f64::from_bits(0x7ff8_0000_0000_00ffu64);
        let t = Table::from_rows(
            "F",
            &["x"],
            vec![
                Row::from_values(vec![Value::Float(-0.0)]),
                Row::from_values(vec![Value::Float(quiet_nan)]),
                Row::from_values(vec![Value::Float(f64::INFINITY)]),
                Row::from_values(vec![Value::Null]),
            ],
        )
        .unwrap();
        let batch = ColumnarBatch::from_table(&t);
        assert!(matches!(batch.column(0), ColumnData::Float { .. }));
        let back = batch.into_table().unwrap();
        for (a, b) in t.rows().iter().zip(back.rows()) {
            assert!(bits_equal(&a[0], &b[0]), "{:?} vs {:?}", a[0], b[0]);
        }
    }

    #[test]
    fn empty_string_is_not_null() {
        let t = table! { "T" => ["s"]; [""], [()] };
        let batch = ColumnarBatch::from_table(&t);
        match batch.column(0) {
            ColumnData::Text { validity, .. } => assert_eq!(validity, &vec![true, false]),
            other => panic!("expected Text column, got {other:?}"),
        }
        assert_eq!(batch.value(0, 0), Value::text(""));
        assert_eq!(batch.value(1, 0), Value::Null);
    }

    #[test]
    fn all_null_column_stores_only_length() {
        let t = table! { "T" => ["a", "b"]; [(), 1], [(), 2] };
        let batch = ColumnarBatch::from_table(&t);
        assert_eq!(batch.column(0), &ColumnData::Null { len: 2 });
        assert_eq!(batch.column(0).null_count(), 2);
        roundtrip(&t);
    }

    #[test]
    fn mixed_column_keeps_values_verbatim() {
        // Int next to Float in one column: the row values must survive
        // without coercion (an Int must come back as Int).
        let t = table! { "T" => ["x"]; [1], [1.5], ["one"] };
        let batch = ColumnarBatch::from_table(&t);
        assert!(matches!(batch.column(0), ColumnData::Mixed { .. }));
        let back = batch.into_table().unwrap();
        assert_eq!(back.cell(0, 0), &Value::Int(1));
        assert_eq!(back.cell(1, 0), &Value::Float(1.5));
    }

    #[test]
    fn from_rows_moves_and_checks_arity() {
        let schema = Schema::of_names(&["a", "b"]).unwrap();
        let rows = vec![
            Row::from_values(vec![Value::Int(1), Value::text("x")]),
            Row::from_values(vec![Value::Int(2), Value::Null]),
        ];
        let batch = ColumnarBatch::from_rows("T", schema.clone(), rows).unwrap();
        assert_eq!(batch.len(), 2);
        let bad =
            ColumnarBatch::from_rows("T", schema, vec![Row::from_values(vec![Value::Int(1)])]);
        assert!(bad.is_err());
    }

    #[test]
    fn append_same_variant_extends() {
        let mut a = ColumnData::from_values(vec![Value::Int(1), Value::Null]);
        let b = ColumnData::from_values(vec![Value::Int(3)]);
        a.append(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(0), Value::Int(1));
        assert_eq!(a.value(1), Value::Null);
        assert_eq!(a.value(2), Value::Int(3));
    }

    #[test]
    fn append_reconciles_null_runs() {
        // Null then typed: the null run becomes leading validity gaps.
        let mut a = ColumnData::Null { len: 2 };
        a.append(ColumnData::from_values(vec![Value::text("x")]));
        assert!(matches!(a, ColumnData::Text { .. }));
        assert_eq!(
            a.into_values(),
            vec![Value::Null, Value::Null, Value::text("x")]
        );
        // Typed then null: push_nulls.
        let mut b = ColumnData::from_values(vec![Value::Float(-0.0)]);
        b.append(ColumnData::Null { len: 2 });
        let vals = b.into_values();
        assert_eq!(vals.len(), 3);
        assert!(bits_equal(&vals[0], &Value::Float(-0.0)));
        assert!(vals[1].is_null() && vals[2].is_null());
    }

    #[test]
    fn append_mismatch_degrades_to_mixed_losslessly() {
        let mut a = ColumnData::from_values(vec![Value::Int(7)]);
        a.append(ColumnData::from_values(vec![Value::text("seven")]));
        assert!(matches!(a, ColumnData::Mixed { .. }));
        assert_eq!(a.into_values(), vec![Value::Int(7), Value::text("seven")]);
    }

    #[test]
    fn from_columns_validates_shape() {
        let schema = Schema::of_names(&["a", "b"]).unwrap();
        let ok = ColumnarBatch::from_columns(
            "T",
            schema.clone(),
            vec![ColumnData::Null { len: 2 }, ColumnData::Null { len: 2 }],
        );
        assert!(ok.is_ok());
        let wrong_count =
            ColumnarBatch::from_columns("T", schema.clone(), vec![ColumnData::Null { len: 2 }]);
        assert!(wrong_count.is_err());
        let ragged = ColumnarBatch::from_columns(
            "T",
            schema,
            vec![ColumnData::Null { len: 2 }, ColumnData::Null { len: 3 }],
        );
        assert!(ragged.is_err());
    }

    #[test]
    fn dates_round_trip_and_pad() {
        let t = table! {
            "T" => ["d"];
            [Value::Date(Date::new(2004, 12, 26).unwrap())],
            [()],
        };
        let batch = ColumnarBatch::from_table(&t);
        assert!(matches!(batch.column(0), ColumnData::Date { .. }));
        roundtrip(&t);
    }

    #[test]
    fn execution_layout_defaults_to_columnar() {
        assert_eq!(ExecutionLayout::default(), ExecutionLayout::Columnar);
    }
}
