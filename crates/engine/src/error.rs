//! Error type for the relational engine.

use std::fmt;

/// Errors produced by the relational engine.
///
/// Every fallible engine operation returns [`Result<T>`](crate::Result) with
/// this error type. The variants are deliberately coarse: they distinguish
/// the *kind* of failure (schema, type, expression, I/O, …) and carry a
/// human-readable description with the offending names or values.
#[derive(Debug)]
pub enum EngineError {
    /// A referenced column does not exist in the schema.
    UnknownColumn {
        /// Name as it appeared in the query or API call.
        name: String,
        /// Name of the table or intermediate relation searched.
        relation: String,
    },
    /// A column name appears more than once where uniqueness is required.
    DuplicateColumn(String),
    /// Two schemas that must be compatible (e.g. for `UNION`) are not.
    SchemaMismatch(String),
    /// A row's arity does not match its table's schema.
    ArityMismatch {
        /// Number of columns the schema defines.
        expected: usize,
        /// Number of values the row carried.
        actual: usize,
    },
    /// An operation was applied to values of an unsupported type,
    /// e.g. arithmetic on text.
    TypeError(String),
    /// An expression failed to evaluate (division by zero, bad cast, …).
    Expression(String),
    /// Failure while parsing external data (CSV cell, date literal, …).
    Parse(String),
    /// Underlying I/O failure (CSV reading/writing).
    Io(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn { name, relation } => {
                write!(f, "unknown column `{name}` in relation `{relation}`")
            }
            EngineError::DuplicateColumn(name) => {
                write!(f, "duplicate column name `{name}`")
            }
            EngineError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            EngineError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {actual}"
                )
            }
            EngineError::TypeError(msg) => write!(f, "type error: {msg}"),
            EngineError::Expression(msg) => write!(f, "expression error: {msg}"),
            EngineError::Parse(msg) => write!(f, "parse error: {msg}"),
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = EngineError::UnknownColumn {
            name: "Age".into(),
            relation: "Students".into(),
        };
        assert_eq!(e.to_string(), "unknown column `Age` in relation `Students`");
    }

    #[test]
    fn display_arity() {
        let e = EngineError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("3 columns"));
        assert!(e.to_string().contains("row has 2"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = EngineError::from(io);
        assert!(e.source().is_some());
    }
}
