//! Binary (de)serialization of engine primitives — the byte codec
//! underneath HumMer's durable catalog store (`hummer_store`).
//!
//! The format is deliberately simple and fully self-describing at the value
//! level: little-endian fixed-width integers, length-prefixed UTF-8 strings,
//! and one tag byte per value. Floats are encoded as their IEEE-754 bit
//! pattern, so every value — including `-0.0` and subnormals — round-trips
//! **bit-identically**; that exactness is what lets a recovered catalog
//! reproduce byte-identical fusion output (see `ARCHITECTURE.md`, "The store
//! subsystem").
//!
//! Corruption surfaces as [`EngineError::Parse`]; framing, checksums, and
//! file-level atomicity live a layer up in `hummer_store`.

use crate::error::EngineError;
use crate::row::Row;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::value::{Date, Value};
use crate::Result;

/// An append-only byte buffer with the codec's primitive encodings.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes with no prefix (caller-framed).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A cursor over a byte slice with checked primitive decodings.
///
/// Every read validates that enough input remains; running off the end (a
/// torn or corrupt buffer) yields [`EngineError::Parse`] instead of a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless every byte was consumed (trailing garbage detection).
    pub fn expect_end(&self, what: &str) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "codec: {} trailing bytes after {what}",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(EngineError::Parse(format!(
                "codec: unexpected end of input reading {what} ({} of {n} bytes left)",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn get_i32(&mut self, what: &str) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a `u32`-length-prefixed UTF-8 string. The length is validated
    /// against the remaining input *before* allocating, so corrupt prefixes
    /// cannot trigger huge allocations.
    pub fn get_str(&mut self, what: &str) -> Result<String> {
        let len = self.get_u32(what)? as usize;
        if len > self.remaining() {
            return Err(EngineError::Parse(format!(
                "codec: {what} declares {len} bytes but only {} remain",
                self.remaining()
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EngineError::Parse(format!("codec: {what} is not valid UTF-8")))
    }

    /// Read a collection count, rejecting counts that cannot possibly fit in
    /// the remaining input given a minimum of `min_item_bytes` per item.
    pub fn get_count(&mut self, min_item_bytes: usize, what: &str) -> Result<usize> {
        let count = self.get_u32(what)? as usize;
        let floor = count.saturating_mul(min_item_bytes.max(1));
        if floor > self.remaining() {
            return Err(EngineError::Parse(format!(
                "codec: {what} declares {count} items but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

// Value tags. Stable on disk — append new tags, never renumber.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_DATE: u8 = 5;

/// Encode one cell value (tag byte + payload).
pub fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(TAG_NULL),
        Value::Bool(b) => {
            w.put_u8(TAG_BOOL);
            w.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            w.put_u8(TAG_INT);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(TAG_FLOAT);
            w.put_u64(f.to_bits());
        }
        Value::Text(s) => {
            w.put_u8(TAG_TEXT);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(TAG_DATE);
            w.put_i32(d.year);
            w.put_u8(d.month);
            w.put_u8(d.day);
        }
    }
}

/// Decode one cell value.
pub fn read_value(r: &mut ByteReader<'_>) -> Result<Value> {
    match r.get_u8("value tag")? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => match r.get_u8("bool value")? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(EngineError::Parse(format!("codec: bad bool byte {other}"))),
        },
        TAG_INT => Ok(Value::Int(r.get_i64("int value")?)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(r.get_u64("float value")?))),
        TAG_TEXT => Ok(Value::Text(r.get_str("text value")?)),
        TAG_DATE => {
            let year = r.get_i32("date year")?;
            let month = r.get_u8("date month")?;
            let day = r.get_u8("date day")?;
            Ok(Value::Date(Date::new(year, month, day)?))
        }
        other => Err(EngineError::Parse(format!("codec: bad value tag {other}"))),
    }
}

fn column_type_tag(t: ColumnType) -> u8 {
    match t {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Text => 3,
        ColumnType::Date => 4,
        ColumnType::Any => 5,
    }
}

fn column_type_from_tag(tag: u8) -> Result<ColumnType> {
    Ok(match tag {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Float,
        3 => ColumnType::Text,
        4 => ColumnType::Date,
        5 => ColumnType::Any,
        other => {
            return Err(EngineError::Parse(format!(
                "codec: bad column type tag {other}"
            )))
        }
    })
}

/// Encode a schema: column count, then (name, type tag) per column.
pub fn write_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u32(schema.len() as u32);
    for c in schema.columns() {
        w.put_str(&c.name);
        w.put_u8(column_type_tag(c.ctype));
    }
}

/// Decode a schema.
pub fn read_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let ncols = r.get_count(5, "schema column count")?;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.get_str("column name")?;
        let ctype = column_type_from_tag(r.get_u8("column type")?)?;
        cols.push(Column::new(name, ctype));
    }
    Schema::new(cols)
}

/// Encode a whole table: name, schema, row count, then every cell in row
/// order. The declared column types are stored as-is (no re-inference), so
/// decoding reproduces the table **exactly** as it was encoded.
pub fn write_table(w: &mut ByteWriter, table: &Table) {
    w.put_str(table.name());
    write_schema(w, table.schema());
    w.put_u32(table.len() as u32);
    for row in table.rows() {
        for v in row.values() {
            write_value(w, v);
        }
    }
}

/// Decode a table encoded by [`write_table`].
pub fn read_table(r: &mut ByteReader<'_>) -> Result<Table> {
    let name = r.get_str("table name")?;
    let schema = read_schema(r)?;
    let ncols = schema.len();
    let nrows = r.get_count(ncols.max(1), "table row count")?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut values = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            values.push(read_value(r)?);
        }
        rows.push(Row::from_values(values));
    }
    Table::new(name, schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    fn round_trip_value(v: &Value) -> Value {
        let mut w = ByteWriter::new();
        write_value(&mut w, v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_value(&mut r).unwrap();
        r.expect_end("value").unwrap();
        back
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        let cases = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Int(0),
            Value::Float(0.1 + 0.2), // not representable "nicely"
            Value::Float(-0.0),
            Value::Float(f64::MIN_POSITIVE / 2.0), // subnormal
            Value::text(""),
            Value::text("with \"quotes\", commas,\nnewlines and ünïcödé 北京"),
            Value::Date(Date::new(2005, 8, 30).unwrap()),
            Value::Date(Date::new(-44, 3, 15).unwrap()),
        ];
        for v in cases {
            let back = round_trip_value(&v);
            // PartialEq treats Int(2)==Float(2.0); compare debug forms for
            // bit-exactness (covers -0.0 vs 0.0 too).
            assert_eq!(format!("{v:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn negative_zero_float_is_preserved() {
        match round_trip_value(&Value::Float(-0.0)) {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn tables_round_trip() {
        let t = table! {
            "Mixed" => ["Name", "Age", "GPA", "Born"];
            ["Ada, \"the\" first", 36, 3.9, "1815-12-10"],
            [(), 24, (), ()],
        };
        let mut w = ByteWriter::new();
        write_table(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_table(&mut r).unwrap();
        r.expect_end("table").unwrap();
        assert_eq!(back, t); // name + schema (incl. types) + rows
    }

    #[test]
    fn truncation_at_every_boundary_errors_cleanly() {
        let t = table! {
            "T" => ["a", "b"];
            [1, "x"],
            [2.5, ()],
        };
        let mut w = ByteWriter::new();
        write_table(&mut w, &t);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(read_table(&mut r).is_err(), "cut at {cut} must not parse");
        }
    }

    #[test]
    fn corrupt_tags_and_counts_error_not_panic() {
        // Bad value tag.
        let mut r = ByteReader::new(&[99]);
        assert!(read_value(&mut r).is_err());
        // Bad bool payload.
        let mut r = ByteReader::new(&[TAG_BOOL, 7]);
        assert!(read_value(&mut r).is_err());
        // String length far beyond the buffer must not allocate/panic.
        let mut w = ByteWriter::new();
        w.put_u8(TAG_TEXT);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(read_value(&mut r).is_err());
        // Invalid date is rejected by Date::new.
        let mut w = ByteWriter::new();
        w.put_u8(TAG_DATE);
        w.put_i32(2005);
        w.put_u8(13);
        w.put_u8(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(read_value(&mut r).is_err());
        // Row count that cannot fit.
        let mut w = ByteWriter::new();
        w.put_str("T");
        write_schema(&mut w, &Schema::of_names(&["a"]).unwrap());
        w.put_u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(read_table(&mut r).is_err());
    }

    #[test]
    fn expect_end_flags_trailing_garbage() {
        let mut w = ByteWriter::new();
        write_value(&mut w, &Value::Int(1));
        w.put_u8(0xAB);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        read_value(&mut r).unwrap();
        assert!(r.expect_end("value").is_err());
    }

    #[test]
    fn non_utf8_text_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_TEXT);
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(read_value(&mut r).is_err());
    }
}
