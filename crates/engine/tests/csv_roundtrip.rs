//! Property-based round-trip tests for the CSV reader/writer: fields with
//! commas, quotes, and newlines — the characters RFC-4180 quoting exists
//! for — must survive `write_csv_str` → `read_csv_str` unchanged.
//!
//! Field content is drawn from letters plus the quoting-relevant specials
//! (`,`, `"`, `\n`, space) and stays non-numeric, so type inference cannot
//! legitimately re-render a value differently (e.g. `1.50` → `1.5`); empty
//! fields are expected to round-trip as `NULL`.

use hummer_engine::csv::{read_csv_str, write_csv_str};
use hummer_engine::Value;
use proptest::prelude::*;

/// Build well-formed CSV from raw fields, quoting every field.
fn csv_from_fields(header: &[String], rows: &[Vec<String>]) -> String {
    let quote = |f: &String| format!("\"{}\"", f.replace('"', "\"\""));
    let mut out: String = header.iter().map(quote).collect::<Vec<_>>().join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// A strategy for a rows × cols grid of tricky fields.
fn grid(cols: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(
        prop::collection::vec("[a-z,\" \n]{0,12}", cols..cols + 1),
        0..max_rows,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_then_read_preserves_fields(rows in (2usize..5).prop_flat_map(|w| grid(w, 7))) {
        let w = rows.first().map(|r| r.len()).unwrap_or(2);
        // Distinct, harmless header names; the content under test is rows.
        let header: Vec<String> = (0..w).map(|i| format!("c{i}")).collect();
        let table = read_csv_str("T", &csv_from_fields(&header, &rows)).unwrap();
        prop_assert_eq!(table.len(), rows.len());

        // 1. Parsed cells carry the exact original field text (empty → NULL).
        for (i, row) in rows.iter().enumerate() {
            for (j, field) in row.iter().enumerate() {
                let cell = table.cell(i, j);
                if field.trim().is_empty() {
                    // `Value::infer` treats whitespace-only as missing.
                    prop_assert!(cell.is_null(), "row {i} col {j}: {cell:?}");
                } else {
                    prop_assert_eq!(cell.to_string(), field.clone());
                }
            }
        }

        // 2. The writer's own output re-reads to an identical table.
        let rewritten = write_csv_str(&table);
        let again = read_csv_str("T", &rewritten).unwrap();
        prop_assert_eq!(again.rows(), table.rows());
        prop_assert_eq!(
            again.schema().names(),
            table.schema().names()
        );
    }

    #[test]
    fn quoted_header_names_round_trip(names in prop::collection::vec("[a-z,\" ]{1,10}", 2..5)) {
        // Headers with commas/quotes must be quoted by the writer too.
        let mut unique = names;
        for (i, n) in unique.iter_mut().enumerate() {
            n.push_str(&format!("_{i}")); // force uniqueness
        }
        let csv = csv_from_fields(&unique, &[]);
        let table = read_csv_str("T", &csv).unwrap();
        prop_assert_eq!(table.schema().names(), unique.iter().map(String::as_str).collect::<Vec<_>>());
        let again = read_csv_str("T", &write_csv_str(&table)).unwrap();
        prop_assert_eq!(again.schema().names(), table.schema().names());
    }
}

#[test]
fn the_classic_trap_cases() {
    // One deterministic grid covering every special at once.
    let rows = vec![
        vec![
            "plain".to_string(),
            "with,comma".to_string(),
            "with \"quotes\"".to_string(),
        ],
        vec![
            "line\nbreak".to_string(),
            String::new(),
            "\",\n\"".to_string(),
        ],
        vec![
            " leading space".to_string(),
            "trailing ".to_string(),
            "\"\"".to_string(),
        ],
    ];
    let header = vec!["a".to_string(), "b".to_string(), "c".to_string()];
    let table = read_csv_str("T", &csv_from_fields(&header, &rows)).unwrap();
    assert_eq!(table.cell(0, 1), &Value::text("with,comma"));
    assert_eq!(table.cell(0, 2), &Value::text("with \"quotes\""));
    assert_eq!(table.cell(1, 0), &Value::text("line\nbreak"));
    assert!(table.cell(1, 1).is_null());
    assert_eq!(table.cell(1, 2), &Value::text("\",\n\""));
    let again = read_csv_str("T", &write_csv_str(&table)).unwrap();
    assert_eq!(again.rows(), table.rows());
}
