//! Prometheus text exposition format (version 0.0.4) writer.

use crate::hist::HistogramSnapshot;

/// Default `le` bucket ladder for latency histograms, in seconds.
pub const DEFAULT_LATENCY_BOUNDS_S: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Incremental writer for the Prometheus text format.
///
/// ```
/// use hummer_obs::{Histogram, PromText};
///
/// let mut out = PromText::new();
/// out.header("hummer_requests_total", "Requests served.", "counter");
/// out.sample("hummer_requests_total", &[("endpoint", "POST /query")], 42.0);
///
/// let hist = Histogram::new();
/// hist.record(1500); // microseconds
/// out.header("hummer_request_seconds", "Request latency.", "histogram");
/// out.histogram_us("hummer_request_seconds", &[], &hist.snapshot(), None);
/// let text = out.finish();
/// assert!(text.contains("hummer_requests_total{endpoint=\"POST /query\"} 42"));
/// assert!(text.contains("hummer_request_seconds_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// An empty exposition document.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Emit `# HELP` and `# TYPE` lines for a metric family. `kind` is one
    /// of `counter`, `gauge`, or `histogram`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        for ch in help.chars() {
            match ch {
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c => self.buf.push(c),
            }
        }
        self.buf.push('\n');
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Emit one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.buf.push_str(name);
        self.write_labels(labels, None);
        self.buf.push(' ');
        self.write_value(value);
        self.buf.push('\n');
    }

    /// Emit a full histogram family (`_bucket` ladder, `_sum`, `_count`)
    /// from a snapshot of microsecond samples, converting to seconds.
    /// With `bounds_s: None` a default `le` ladder spanning 100 µs – 10 s
    /// is used. Buckets whose range holds an exemplar trace id (recorded
    /// via `Histogram::record_with_trace`) get OpenMetrics exemplar syntax
    /// appended: `... # {trace_id="<16-hex>"} <seconds>`.
    pub fn histogram_us(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        bounds_s: Option<&[f64]>,
    ) {
        let bounds = bounds_s.unwrap_or(DEFAULT_LATENCY_BOUNDS_S);
        let exemplars = snap.has_exemplars();
        let bucket = format!("{name}_bucket");
        let mut prev_us = 0u64;
        for &bound in bounds {
            let bound_us = (bound * 1e6).round() as u64;
            let c = snap.cumulative_le(bound_us);
            self.buf.push_str(&bucket);
            self.write_labels(labels, Some(bound));
            self.buf.push(' ');
            self.write_value(c as f64);
            if exemplars {
                self.write_exemplar(snap.exemplar_between(prev_us, bound_us));
            }
            self.buf.push('\n');
            prev_us = bound_us;
        }
        self.buf.push_str(&bucket);
        self.write_labels_inf(labels);
        self.buf.push(' ');
        self.write_value(snap.count() as f64);
        if exemplars {
            self.write_exemplar(snap.exemplar_between(prev_us, u64::MAX));
        }
        self.buf.push('\n');

        self.buf.push_str(name);
        self.buf.push_str("_sum");
        self.write_labels(labels, None);
        self.buf.push(' ');
        self.write_value(snap.sum() as f64 * 1e-6);
        self.buf.push('\n');

        self.buf.push_str(name);
        self.buf.push_str("_count");
        self.write_labels(labels, None);
        self.buf.push(' ');
        self.write_value(snap.count() as f64);
        self.buf.push('\n');
    }

    /// Emit a full histogram family from a snapshot of *raw-unit* samples
    /// (record counts, bytes — no microsecond→second scaling): `_bucket`
    /// ladder over powers of two from 1 to 4096, unscaled `_sum`, `_count`.
    pub fn histogram_raw(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let bucket = format!("{name}_bucket");
        for exp in 0..13u32 {
            let bound = 2f64.powi(exp as i32);
            let c = snap.cumulative_le(bound as u64);
            self.buf.push_str(&bucket);
            self.write_labels(labels, Some(bound));
            self.buf.push(' ');
            self.write_value(c as f64);
            self.buf.push('\n');
        }
        self.buf.push_str(&bucket);
        self.write_labels_inf(labels);
        self.buf.push(' ');
        self.write_value(snap.count() as f64);
        self.buf.push('\n');

        self.buf.push_str(name);
        self.buf.push_str("_sum");
        self.write_labels(labels, None);
        self.buf.push(' ');
        self.write_value(snap.sum() as f64);
        self.buf.push('\n');

        self.buf.push_str(name);
        self.buf.push_str("_count");
        self.write_labels(labels, None);
        self.buf.push(' ');
        self.write_value(snap.count() as f64);
        self.buf.push('\n');
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.buf
    }

    fn write_labels(&mut self, labels: &[(&str, &str)], le: Option<f64>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.buf.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(k);
            self.buf.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => self.buf.push_str("\\\\"),
                    '"' => self.buf.push_str("\\\""),
                    '\n' => self.buf.push_str("\\n"),
                    c => self.buf.push(c),
                }
            }
            self.buf.push('"');
        }
        if let Some(bound) = le {
            if !first {
                self.buf.push(',');
            }
            self.buf.push_str("le=\"");
            self.write_value(bound);
            self.buf.push('"');
        }
        self.buf.push('}');
    }

    fn write_labels_inf(&mut self, labels: &[(&str, &str)]) {
        self.buf.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(k);
            self.buf.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => self.buf.push_str("\\\\"),
                    '"' => self.buf.push_str("\\\""),
                    '\n' => self.buf.push_str("\\n"),
                    c => self.buf.push(c),
                }
            }
            self.buf.push('"');
        }
        if !first {
            self.buf.push(',');
        }
        self.buf.push_str("le=\"+Inf\"}");
    }

    /// Append exemplar syntax to the current bucket line:
    /// ` # {trace_id="<16-hex>"} <value_seconds>`. Nothing when the
    /// bucket's range holds no exemplar.
    fn write_exemplar(&mut self, exemplar: Option<(u64, u64)>) {
        if let Some((trace, value_us)) = exemplar {
            let _ = std::fmt::Write::write_fmt(
                &mut self.buf,
                format_args!(" # {{trace_id=\"{trace:016x}\"}} "),
            );
            self.write_value(value_us as f64 * 1e-6);
        }
    }

    fn write_value(&mut self, value: f64) {
        // Prometheus floats: plain decimal; integers render without a
        // fractional part, which `{}` on f64 already does.
        if value == value.trunc() && value.abs() < 1e15 {
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{}", value as i64));
        } else {
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{value}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn renders_counter_with_escaped_labels() {
        let mut out = PromText::new();
        out.header("x_total", "Help with \\ and\nnewline.", "counter");
        out.sample("x_total", &[("ep", "a\"b\\c\nd")], 7.0);
        let text = out.finish();
        assert!(text.contains("# HELP x_total Help with \\\\ and\\nnewline.\n"));
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{ep=\"a\\\"b\\\\c\\nd\"} 7\n"));
    }

    #[test]
    fn histogram_ladder_is_cumulative_and_ends_at_count() {
        let h = Histogram::new();
        for us in [50u64, 600, 600, 30_000, 2_000_000] {
            h.record(us);
        }
        let mut out = PromText::new();
        out.histogram_us("lat_seconds", &[("stage", "detect")], &h.snapshot(), None);
        let text = out.finish();
        assert!(text.contains("lat_seconds_bucket{stage=\"detect\",le=\"0.0001\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{stage=\"detect\",le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_seconds_count{stage=\"detect\"} 5\n"));
        // Monotone ladder.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v as u64 >= prev, "non-monotone: {line}");
            prev = v as u64;
        }
    }

    #[test]
    fn exemplars_render_on_bucket_lines_only_when_present() {
        let h = Histogram::new();
        h.record(500); // no trace
        let mut out = PromText::new();
        out.histogram_us("lat_seconds", &[], &h.snapshot(), None);
        assert!(!out.finish().contains(" # {"), "no exemplars expected");

        h.record_with_trace(200_000, Some(0x00ab_cdef_0123_4567));
        let mut out = PromText::new();
        out.histogram_us("lat_seconds", &[], &h.snapshot(), None);
        let text = out.finish();
        // 200ms lands in the (0.1, 0.25] bucket of the default ladder.
        let line = text
            .lines()
            .find(|l| l.contains("le=\"0.25\""))
            .expect("0.25 bucket line");
        assert!(
            line.contains("# {trace_id=\"00abcdef01234567\"}"),
            "exemplar missing: {line}"
        );
        // The exemplar value is the bucket edge in seconds (~0.2).
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((0.19..=0.25).contains(&value), "exemplar value {value}");
        // Untouched ranges stay exemplar-free.
        let early = text.lines().find(|l| l.contains("le=\"0.0001\"")).unwrap();
        assert!(!early.contains(" # {"), "{early}");
    }

    #[test]
    fn bare_sample_has_no_braces() {
        let mut out = PromText::new();
        out.sample("up", &[], 1.0);
        assert_eq!(out.finish(), "up 1\n");
    }
}
