//! Per-query tracing: trace IDs, nested stage spans, and a bounded ring
//! of completed span records with query-time tree assembly.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A completed span, as stored in the tracer's ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// Span id, unique within the tracer.
    pub id: u64,
    /// Parent span id; `None` for a trace root.
    pub parent: Option<u64>,
    /// Stage name, e.g. `"detect"`.
    pub name: Cow<'static, str>,
    /// Start offset from the trace root's start, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub duration_us: u64,
    /// Counters attached while the span was live, in attachment order.
    pub counters: Vec<(Cow<'static, str>, u64)>,
    /// Node label naming where the span ran: `None` for local spans,
    /// `Some(worker_addr)` for spans spliced in from a remote worker.
    pub node: Option<String>,
}

#[derive(Debug)]
struct Ring {
    records: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct Shared {
    next_id: AtomicU64,
    ring: Mutex<Ring>,
}

/// Destination for spans. Cloning is cheap (an `Arc`); the default tracer
/// is disabled and makes every span a no-op.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A disabled tracer: spans skip clock reads, allocation, and locking.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer whose ring retains the most recent `capacity`
    /// completed spans (oldest evicted first).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            shared: Some(Arc::new(Shared {
                next_id: AtomicU64::new(1),
                ring: Mutex::new(Ring {
                    records: VecDeque::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether spans from this tracer record anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Start a new trace; the returned root span carries a fresh trace id.
    pub fn trace(&self, name: impl Into<Cow<'static, str>>) -> Span {
        match &self.shared {
            None => Span { inner: None },
            Some(shared) => {
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                Span {
                    inner: Some(SpanInner {
                        shared: Arc::clone(shared),
                        trace: id,
                        id,
                        parent: None,
                        name: name.into(),
                        epoch: now,
                        start: now,
                        counters: Vec::new(),
                        node: None,
                    }),
                }
            }
        }
    }

    /// Allocate a bare trace id without creating a span — for tagging
    /// requests that are rejected before any span-producing work runs
    /// (admission 503s, read-timeout 408s). Returns `None` when disabled.
    pub fn allocate_trace_id(&self) -> Option<u64> {
        self.shared
            .as_ref()
            .map(|s| s.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Adopt a remote trace context: start a span that belongs to `trace`
    /// and hangs under the remote `parent` span id, as a worker does when a
    /// coordinator propagates `(trace_id, parent_span_id)` in a shard
    /// request. Local span ids are advanced past `parent` first so ids
    /// allocated under the adopted root can never collide with it — the
    /// coordinator's splice relies on that to tell intra-subtree parent
    /// links (remapped) apart from the adopted parent (reattached).
    pub fn adopt_remote(
        &self,
        trace: u64,
        parent: u64,
        name: impl Into<Cow<'static, str>>,
    ) -> Span {
        match &self.shared {
            None => Span { inner: None },
            Some(shared) => {
                shared
                    .next_id
                    .fetch_max(parent.saturating_add(1), Ordering::Relaxed);
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                Span {
                    inner: Some(SpanInner {
                        shared: Arc::clone(shared),
                        trace,
                        id,
                        parent: Some(parent),
                        name: name.into(),
                        epoch: now,
                        start: now,
                        counters: Vec::new(),
                        node: None,
                    }),
                }
            }
        }
    }

    /// Take every retained record out of the ring, oldest first. Used by
    /// workers to harvest the span subtree of one shard batch from a
    /// dedicated capture tracer before shipping it back to the coordinator.
    pub fn drain(&self) -> Vec<SpanRecord> {
        match &self.shared {
            None => Vec::new(),
            Some(shared) => {
                let mut ring = shared.ring.lock().expect("obs ring poisoned");
                ring.records.drain(..).collect()
            }
        }
    }

    /// Completed spans currently retained in the ring.
    pub fn span_count(&self) -> usize {
        match &self.shared {
            None => 0,
            Some(shared) => shared.ring.lock().expect("obs ring poisoned").records.len(),
        }
    }

    /// Spans evicted from the ring since the tracer was created.
    pub fn dropped_spans(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(shared) => shared.ring.lock().expect("obs ring poisoned").dropped,
        }
    }

    /// All retained records for one trace, in completion order.
    pub fn trace_spans(&self, trace: u64) -> Vec<SpanRecord> {
        match &self.shared {
            None => Vec::new(),
            Some(shared) => shared
                .ring
                .lock()
                .expect("obs ring poisoned")
                .records
                .iter()
                .filter(|r| r.trace == trace)
                .cloned()
                .collect(),
        }
    }

    /// Assemble the span tree for one trace, or `None` if no spans for it
    /// remain in the ring. Children are ordered by start offset. Spans
    /// whose parent was evicted ("orphans") surface as extra roots so
    /// partial traces stay inspectable.
    pub fn trace_tree(&self, trace: u64) -> Option<TraceTree> {
        let records = self.trace_spans(trace);
        if records.is_empty() {
            return None;
        }
        let present: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
        let mut children: std::collections::HashMap<u64, Vec<SpanRecord>> =
            std::collections::HashMap::new();
        let mut roots = Vec::new();
        let mut orphans = 0usize;
        for r in records {
            match r.parent {
                Some(p) if present.contains(&p) => children.entry(p).or_default().push(r),
                Some(_) => {
                    orphans += 1;
                    roots.push(r);
                }
                None => roots.push(r),
            }
        }
        fn build(
            record: SpanRecord,
            children: &mut std::collections::HashMap<u64, Vec<SpanRecord>>,
        ) -> TraceNode {
            let mut kids = children.remove(&record.id).unwrap_or_default();
            kids.sort_by_key(|r| (r.start_us, r.id));
            TraceNode {
                record,
                children: kids.into_iter().map(|r| build(r, children)).collect(),
            }
        }
        roots.sort_by_key(|r| (r.start_us, r.id));
        let roots = roots.into_iter().map(|r| build(r, &mut children)).collect();
        Some(TraceTree {
            trace,
            roots,
            orphans,
        })
    }

    /// Trace ids of the most recently completed root spans, newest first,
    /// up to `limit`.
    pub fn recent_traces(&self, limit: usize) -> Vec<u64> {
        match &self.shared {
            None => Vec::new(),
            Some(shared) => {
                let ring = shared.ring.lock().expect("obs ring poisoned");
                let mut out = Vec::new();
                for r in ring.records.iter().rev() {
                    if r.parent.is_none() && !out.contains(&r.trace) {
                        out.push(r.trace);
                        if out.len() == limit {
                            break;
                        }
                    }
                }
                out
            }
        }
    }
}

#[derive(Debug)]
struct SpanInner {
    shared: Arc<Shared>,
    trace: u64,
    id: u64,
    parent: Option<u64>,
    name: Cow<'static, str>,
    /// Start instant of the trace root, for computing start offsets.
    epoch: Instant,
    start: Instant,
    counters: Vec<(Cow<'static, str>, u64)>,
    node: Option<String>,
}

/// An in-flight span: measures from construction to drop, then pushes one
/// [`SpanRecord`] into its tracer's ring. Create nested stage spans with
/// [`Span::child`]; attach counters with [`Span::count`].
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Default for Span {
    fn default() -> Self {
        Span::noop()
    }
}

impl Span {
    /// A span that records nothing — the unit for untraced call sites.
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The owning trace id, or `None` for a no-op span.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.trace)
    }

    /// This span's own id, or `None` for a no-op span. Propagated to
    /// workers as the remote `parent_span_id`.
    pub fn span_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Tag this span with a node label (e.g. the worker address a call
    /// went to). No-op on a disabled span.
    pub fn set_node(&mut self, node: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            inner.node = Some(node.into());
        }
    }

    /// Start a child span. On a no-op span this is free and returns
    /// another no-op.
    pub fn child(&self, name: impl Into<Cow<'static, str>>) -> Span {
        match &self.inner {
            None => Span { inner: None },
            Some(inner) => Span {
                inner: Some(SpanInner {
                    shared: Arc::clone(&inner.shared),
                    trace: inner.trace,
                    id: inner.shared.next_id.fetch_add(1, Ordering::Relaxed),
                    parent: Some(inner.id),
                    name: name.into(),
                    epoch: inner.epoch,
                    start: Instant::now(),
                    counters: Vec::new(),
                    node: None,
                }),
            },
        }
    }

    /// Splice a remote span subtree under this span: every record is
    /// re-keyed to a fresh local id (remote ids come from the worker's own
    /// counter and would collide with local ones), intra-subtree parent
    /// links are remapped through the same table, and records whose parent
    /// is not part of the batch — the adopted roots — are reattached to
    /// this span. Every record is tagged with `node` (unless the worker
    /// already tagged it from a deeper splice) and its start offset is
    /// shifted to this span's start, so the stitched tree orders worker
    /// stages inside the call that produced them. No-op on a no-op span.
    pub fn splice_remote(&self, node: &str, records: &[SpanRecord]) {
        let Some(inner) = &self.inner else { return };
        if records.is_empty() {
            return;
        }
        let mut remap = std::collections::HashMap::with_capacity(records.len());
        for r in records {
            remap.insert(r.id, inner.shared.next_id.fetch_add(1, Ordering::Relaxed));
        }
        let offset = duration_us(inner.start.saturating_duration_since(inner.epoch));
        let mut ring = inner.shared.ring.lock().expect("obs ring poisoned");
        for r in records {
            let parent = match r.parent.and_then(|p| remap.get(&p)) {
                Some(&p) => Some(p),
                None => Some(inner.id),
            };
            let record = SpanRecord {
                trace: inner.trace,
                id: remap[&r.id],
                parent,
                name: r.name.clone(),
                start_us: offset.saturating_add(r.start_us),
                duration_us: r.duration_us,
                counters: r.counters.clone(),
                node: r.node.clone().or_else(|| Some(node.to_string())),
            };
            if ring.records.len() == ring.capacity {
                ring.records.pop_front();
                ring.dropped += 1;
            }
            ring.records.push_back(record);
        }
    }

    /// Add `value` to the named counter on this span (counters with the
    /// same name accumulate). No-op on a disabled span.
    pub fn count(&mut self, name: impl Into<Cow<'static, str>>, value: u64) {
        if let Some(inner) = &mut self.inner {
            let name = name.into();
            match inner.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += value,
                None => inner.counters.push((name, value)),
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = Instant::now();
            let record = SpanRecord {
                trace: inner.trace,
                id: inner.id,
                parent: inner.parent,
                name: inner.name,
                start_us: duration_us(inner.start.saturating_duration_since(inner.epoch)),
                duration_us: duration_us(end.saturating_duration_since(inner.start)),
                counters: inner.counters,
                node: inner.node,
            };
            // Mutex held only for the push/evict — a handful of pointer
            // moves, ~10 times per traced query.
            if let Ok(mut ring) = inner.shared.ring.lock() {
                if ring.records.len() == ring.capacity {
                    ring.records.pop_front();
                    ring.dropped += 1;
                }
                ring.records.push_back(record);
            }
        }
    }
}

fn duration_us(d: std::time::Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// One node of an assembled trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// The completed span at this node.
    pub record: SpanRecord,
    /// Child spans, ordered by start offset.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total number of spans in this subtree.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceNode::span_count)
            .sum::<usize>()
    }
}

/// The assembled span tree of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTree {
    /// The trace id.
    pub trace: u64,
    /// Root spans: normally one (the request span), plus any orphans
    /// whose parents were evicted from the ring.
    pub roots: Vec<TraceNode>,
    /// Number of retained spans whose parent record was evicted.
    pub orphans: usize,
}

impl TraceTree {
    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(TraceNode::span_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_spans_are_noops() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut root = tracer.trace("query");
        assert!(!root.is_recording());
        assert_eq!(root.trace_id(), None);
        root.count("x", 1);
        let child = root.child("stage");
        assert!(!child.is_recording());
        drop(child);
        drop(root);
        assert_eq!(tracer.span_count(), 0);
    }

    #[test]
    fn spans_nest_and_assemble() {
        let tracer = Tracer::with_capacity(64);
        let trace_id;
        {
            let mut root = tracer.trace("query");
            trace_id = root.trace_id().unwrap();
            {
                let mut a = root.child("prepare");
                {
                    let mut m = a.child("match");
                    m.count("tables", 3);
                    m.count("tables", 2);
                }
                let _d = a.child("detect");
                a.count("rows", 10);
            }
            root.count("status", 200);
        }
        let tree = tracer.trace_tree(trace_id).expect("trace present");
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.orphans, 0);
        assert_eq!(tree.span_count(), 4);
        let root = &tree.roots[0];
        assert_eq!(root.record.name, "query");
        assert_eq!(root.children.len(), 1);
        let prepare = &root.children[0];
        assert_eq!(prepare.record.name, "prepare");
        let names: Vec<_> = prepare
            .children
            .iter()
            .map(|c| c.record.name.clone())
            .collect();
        assert_eq!(names, ["match", "detect"]);
        assert_eq!(prepare.children[0].record.counters, [("tables".into(), 5)]);
        // Children start no earlier than their parent.
        assert!(prepare.children[0].record.start_us >= prepare.record.start_us);
    }

    #[test]
    fn ring_evicts_oldest_and_reports_orphans() {
        let tracer = Tracer::with_capacity(2);
        let trace_id;
        {
            let root = tracer.trace("query");
            trace_id = root.trace_id().unwrap();
            drop(root.child("a"));
            drop(root.child("b"));
            drop(root.child("c"));
        }
        // Capacity 2: "a" and "b" evicted; "c" and the root survive.
        assert_eq!(tracer.span_count(), 2);
        assert_eq!(tracer.dropped_spans(), 2);
        let tree = tracer.trace_tree(trace_id).expect("trace present");
        assert_eq!(tree.span_count(), 2);
        assert_eq!(tree.orphans, 0);
        // Evict the root too: the remaining child becomes an orphan root.
        {
            let other = tracer.trace("other");
            drop(other.child("x"));
            drop(other.child("y"));
        }
        match tracer.trace_tree(trace_id) {
            None => {}
            Some(t) => assert_eq!(t.orphans, t.roots.len()),
        }
    }

    #[test]
    fn splice_remaps_ids_and_reattaches_roots() {
        // Worker side: a capture tracer adopts a remote context and records
        // a small stage subtree.
        let capture = Tracer::with_capacity(16);
        let remote_trace = 77;
        let remote_parent = 3; // deliberately small: must not collide
        {
            let batch = capture.adopt_remote(remote_trace, remote_parent, "worker_batch");
            let shard = batch.child("shard");
            drop(shard.child("score"));
            drop(shard.child("cluster"));
        }
        let shipped = capture.drain();
        assert_eq!(shipped.len(), 4);
        assert_eq!(capture.span_count(), 0);
        assert!(
            shipped.iter().all(|r| r.id > remote_parent),
            "local ids must clear the adopted parent id: {shipped:?}"
        );

        // Coordinator side: splice under a live worker_call span.
        let tracer = Tracer::with_capacity(64);
        let trace_id;
        {
            let root = tracer.trace("query");
            trace_id = root.trace_id().unwrap();
            let call = root.child("worker_call");
            call.splice_remote("w1:7788", &shipped);
        }
        let tree = tracer.trace_tree(trace_id).expect("trace present");
        assert_eq!(tree.orphans, 0, "splice must not create dangling parents");
        assert_eq!(tree.span_count(), 6);
        let call = &tree.roots[0].children[0];
        assert_eq!(call.record.name, "worker_call");
        let batch = &call.children[0];
        assert_eq!(batch.record.name, "worker_batch");
        assert_eq!(batch.record.node.as_deref(), Some("w1:7788"));
        let shard = &batch.children[0];
        let names: Vec<_> = shard
            .children
            .iter()
            .map(|c| c.record.name.clone())
            .collect();
        assert_eq!(names, ["score", "cluster"]);
        assert!(shard
            .children
            .iter()
            .all(|c| c.record.node.as_deref() == Some("w1:7788")));
    }

    #[test]
    fn adopt_remote_on_disabled_tracer_is_noop() {
        let tracer = Tracer::disabled();
        let span = tracer.adopt_remote(9, 1, "x");
        assert!(!span.is_recording());
        assert_eq!(tracer.allocate_trace_id(), None);
        span.splice_remote("w", &[]);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn recent_traces_returns_roots_newest_first() {
        let tracer = Tracer::with_capacity(16);
        let a = {
            let s = tracer.trace("a");
            s.trace_id().unwrap()
        };
        let b = {
            let s = tracer.trace("b");
            s.trace_id().unwrap()
        };
        assert_eq!(tracer.recent_traces(10), vec![b, a]);
        assert_eq!(tracer.recent_traces(1), vec![b]);
    }
}
