//! Observability substrate for HumMer: tracing spans, lock-free
//! histograms, and Prometheus text exposition.
//!
//! The crate is std-only and dependency-free, like the rest of the
//! workspace. Three pieces compose:
//!
//! - [`Histogram`]: a lock-free log-bucketed latency histogram. Recording
//!   is a single relaxed `fetch_add` into an atomic bucket; quantiles are
//!   read from a consistent-enough snapshot with a bounded ~1.6% relative
//!   error (64 sub-buckets per power-of-two octave).
//! - [`Tracer`] / [`Span`]: per-query trace IDs with nested stage spans.
//!   A span is an RAII guard — it measures from construction to drop and
//!   pushes one flat [`SpanRecord`] into a bounded ring buffer. Trees are
//!   assembled at query time ([`Tracer::trace_tree`]), never on the hot
//!   path. A disabled tracer (the default) costs one `Option` branch per
//!   span and performs no clock reads, no allocation, and no locking.
//! - [`PromText`]: a small writer for the Prometheus text exposition
//!   format (`counter` / `gauge` / `histogram` families with labels).
//!
//! # Overhead contract
//!
//! The pipeline instruments *stage boundaries*, not inner loops: a traced
//! query records on the order of ten spans, and counters are harvested
//! from statistics the stages already maintain. `exp14_observability`
//! enforces that the fully-instrumented pipeline stays within 3% of the
//! uninstrumented wall time with bit-identical fused output.
//!
//! ```
//! use hummer_obs::{Histogram, Tracer};
//!
//! let tracer = Tracer::with_capacity(1024);
//! let trace_id;
//! {
//!     let root = tracer.trace("query");
//!     trace_id = root.trace_id().unwrap();
//!     let mut detect = root.child("detect");
//!     detect.count("candidates", 42);
//! } // spans record on drop
//! let tree = tracer.trace_tree(trace_id).unwrap();
//! assert_eq!(tree.roots[0].record.name, "query");
//! assert_eq!(tree.roots[0].children[0].record.name, "detect");
//!
//! let hist = Histogram::new();
//! hist.record(1500);
//! assert!(hist.snapshot().quantile(0.5) >= 1500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod prom;
mod span;
mod vecs;

pub use event::{EventLog, EventRecord};
pub use hist::{bucket_count, bucket_index, bucket_upper_edge, Histogram, HistogramSnapshot};
pub use prom::PromText;
pub use span::{Span, SpanRecord, TraceNode, TraceTree, Tracer};
pub use vecs::{Counter, CounterVec, HistogramVec};

/// Observability knob carried on `HummerConfig`.
///
/// The default is fully disabled: spans become no-ops that skip even the
/// clock read, so library users pay nothing unless they opt in.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Destination for spans produced by pipeline stages. Disabled by
    /// default; share one enabled tracer between the server and the
    /// pipeline so request spans and stage spans land in the same ring.
    pub tracer: Tracer,
}

impl ObsConfig {
    /// An enabled configuration whose span ring holds `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        ObsConfig {
            tracer: Tracer::with_capacity(capacity),
        }
    }
}
