//! Sampled structured event log: one JSON line per served request, delta
//! batch, or shard scatter.
//!
//! The sampler is biased toward what an operator actually greps for:
//! errors, overload rejects, and the slowest decile are **always** kept;
//! fast successes are dropped once the log has seen enough traffic to know
//! what "slow" means. Dropped events are counted, so sampling is honest —
//! `written + dropped` is the true event count.
//!
//! The slowest-decile cut uses the same log-bucketed [`Histogram`] as the
//! serving metrics: every event's latency is recorded, and the keep
//! threshold is refreshed to the p90 every [`THRESHOLD_REFRESH`] events.
//! The first [`WARMUP`] events are always written so short runs (tests,
//! smoke scripts) see their traffic.

use crate::hist::Histogram;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Events always written before the sampler trusts its latency threshold.
const WARMUP: u64 = 32;
/// Refresh the cached p90 threshold every this many events.
const THRESHOLD_REFRESH: u64 = 64;

/// One loggable event. Build with struct-literal syntax; `trace`/`shards`
/// are omitted from the JSON line when `None`.
#[derive(Debug, Clone)]
pub struct EventRecord<'a> {
    /// Event kind: `"request"`, `"delta"`, `"scatter"`, or `"reject"`.
    pub kind: &'a str,
    /// Trace id of the request this event belongs to, when traced.
    pub trace: Option<u64>,
    /// Endpoint label (e.g. `POST /query`) or stage name.
    pub endpoint: &'a str,
    /// HTTP status answered (0 when not applicable).
    pub status: u16,
    /// Wall-clock latency in microseconds.
    pub latency_us: u64,
    /// Shard fan-out, for scatter events and coordinator queries.
    pub shards: Option<u64>,
    /// Whether the event is an error outcome (always kept).
    pub error: bool,
}

#[derive(Debug)]
struct Inner {
    file: Mutex<File>,
    latencies: Histogram,
    written: AtomicU64,
    dropped: AtomicU64,
    /// Cached slowest-decile threshold in microseconds (p90 of everything
    /// seen so far; 0 until the first refresh).
    threshold_us: AtomicU64,
}

/// A sampled JSON-lines event log. Cloning shares the underlying file;
/// the default is disabled and makes [`EventLog::emit`] free.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Option<Arc<Inner>>,
}

impl EventLog {
    /// A disabled log: every emit is a no-op.
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// Open (create or append to) a JSON-lines log at `path`.
    pub fn to_path(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog {
            inner: Some(Arc::new(Inner {
                file: Mutex::new(file),
                latencies: Histogram::new(),
                written: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                threshold_us: AtomicU64::new(0),
            })),
        })
    }

    /// Whether events go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.written.load(Ordering::Relaxed))
    }

    /// Events the sampler dropped (fast successes past warm-up).
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Offer one event to the sampler; write it as a JSON line if kept.
    /// Errors and rejects are always kept; successes are kept while the
    /// sampler warms up or when they fall in the slowest decile.
    pub fn emit(&self, event: &EventRecord<'_>) {
        let Some(inner) = &self.inner else { return };
        inner.latencies.record(event.latency_us);
        let seen = inner.written.load(Ordering::Relaxed) + inner.dropped.load(Ordering::Relaxed);
        if seen % THRESHOLD_REFRESH == THRESHOLD_REFRESH - 1 {
            let p90 = inner.latencies.snapshot().quantile(0.9);
            inner.threshold_us.store(p90.max(1), Ordering::Relaxed);
        }
        let threshold = inner.threshold_us.load(Ordering::Relaxed);
        let keep = event.error
            || event.kind == "reject"
            || seen < WARMUP
            || threshold == 0
            || event.latency_us >= threshold;
        if !keep {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }

        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let mut line = String::with_capacity(160);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"kind\":\"");
        json_escape_into(&mut line, event.kind);
        line.push('"');
        if let Some(trace) = event.trace {
            line.push_str(",\"trace\":\"");
            line.push_str(&format!("{trace:016x}"));
            line.push('"');
        }
        line.push_str(",\"endpoint\":\"");
        json_escape_into(&mut line, event.endpoint);
        line.push_str("\",\"status\":");
        line.push_str(&event.status.to_string());
        line.push_str(",\"latency_us\":");
        line.push_str(&event.latency_us.to_string());
        if let Some(shards) = event.shards {
            line.push_str(",\"shards\":");
            line.push_str(&shards.to_string());
        }
        if event.error {
            line.push_str(",\"error\":true");
        }
        line.push_str("}\n");

        // One write_all per line keeps concurrent writers' lines whole;
        // a failed write is dropped silently (the log must never take the
        // serving path down).
        let mut file = inner.file.lock().expect("event log poisoned");
        if file.write_all(line.as_bytes()).is_ok() {
            inner.written.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn json_escape_into(buf: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hummer_obs_event_{name}_{}", std::process::id()));
        p
    }

    fn event(latency_us: u64, status: u16) -> EventRecord<'static> {
        EventRecord {
            kind: "request",
            trace: Some(0xabc),
            endpoint: "POST /query",
            status,
            latency_us,
            shards: None,
            error: status >= 400,
        }
    }

    #[test]
    fn disabled_log_is_free() {
        let log = EventLog::disabled();
        assert!(!log.is_enabled());
        log.emit(&event(10, 200));
        assert_eq!((log.written(), log.dropped()), (0, 0));
    }

    #[test]
    fn errors_and_slowest_survive_sampling() {
        let path = scratch("sampling");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::to_path(&path).unwrap();
        // Warm-up + enough bimodal traffic to arm the threshold: 80% fast
        // at ~100 µs, 20% slow at ~50 ms, so the nearest-rank p90 lands in
        // the slow mode and fast successes fall below it.
        for i in 0..200 {
            let latency = if i % 5 == 4 { 50_000 } else { 100 };
            log.emit(&event(latency, 200));
        }
        let dropped_before = log.dropped();
        assert!(dropped_before > 0, "fast successes must be sampled out");
        log.emit(&event(50, 500)); // error: always kept
        log.emit(&EventRecord {
            kind: "reject",
            trace: None,
            endpoint: "rejected",
            status: 503,
            latency_us: 0,
            shards: None,
            error: true,
        });
        log.emit(&event(1_000_000, 200)); // way past p90: kept
        assert_eq!(log.dropped(), dropped_before);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, log.written());
        assert!(text.contains("\"status\":500"));
        assert!(text.contains("\"kind\":\"reject\""));
        assert!(text.contains("\"latency_us\":1000000"));
        assert!(text.contains("\"trace\":\"0000000000000abc\""));
        // Every line is an object with the required keys.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"ts_us\":") && line.contains("\"endpoint\":"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn endpoint_strings_are_escaped() {
        let path = scratch("escape");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::to_path(&path).unwrap();
        log.emit(&EventRecord {
            kind: "request",
            trace: None,
            endpoint: "bad\"quote\\and\nnewline",
            status: 200,
            latency_us: 5,
            shards: Some(3),
            error: false,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("bad\\\"quote\\\\and\\nnewline"));
        assert!(text.contains("\"shards\":3"));
        std::fs::remove_file(&path).ok();
    }
}
