//! Labeled metric families: lock-free counters and histogram vectors.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A family of [`Histogram`]s keyed by label values. Lookups take a read
/// lock on the label map and return a shared handle; recording through
/// the handle is lock-free. Keep the handle when recording repeatedly.
#[derive(Debug, Default)]
pub struct HistogramVec {
    inner: RwLock<BTreeMap<Vec<String>, Arc<Histogram>>>,
}

impl HistogramVec {
    /// An empty family.
    pub fn new() -> Self {
        HistogramVec::default()
    }

    /// The histogram for the given label values, created on first use.
    pub fn with(&self, labels: &[&str]) -> Arc<Histogram> {
        let key: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        {
            let map = self.inner.read().expect("obs histogram vec poisoned");
            if let Some(h) = map.get(&key) {
                return Arc::clone(h);
            }
        }
        let mut map = self.inner.write().expect("obs histogram vec poisoned");
        Arc::clone(map.entry(key).or_default())
    }

    /// Snapshot every labeled histogram, sorted by label values.
    pub fn snapshot(&self) -> Vec<(Vec<String>, HistogramSnapshot)> {
        let map = self.inner.read().expect("obs histogram vec poisoned");
        map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
    }
}

/// A family of [`Counter`]s keyed by label values.
#[derive(Debug, Default)]
pub struct CounterVec {
    inner: RwLock<BTreeMap<Vec<String>, Arc<Counter>>>,
}

impl CounterVec {
    /// An empty family.
    pub fn new() -> Self {
        CounterVec::default()
    }

    /// The counter for the given label values, created on first use.
    pub fn with(&self, labels: &[&str]) -> Arc<Counter> {
        let key: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        {
            let map = self.inner.read().expect("obs counter vec poisoned");
            if let Some(c) = map.get(&key) {
                return Arc::clone(c);
            }
        }
        let mut map = self.inner.write().expect("obs counter vec poisoned");
        Arc::clone(map.entry(key).or_default())
    }

    /// Read every labeled counter, sorted by label values.
    pub fn snapshot(&self) -> Vec<(Vec<String>, u64)> {
        let map = self.inner.read().expect("obs counter vec poisoned");
        map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_vec_keys_by_labels() {
        let v = CounterVec::new();
        v.with(&["a"]).inc();
        v.with(&["a"]).add(2);
        v.with(&["b"]).inc();
        let snap = v.snapshot();
        assert_eq!(snap, vec![(vec!["a".into()], 3), (vec!["b".into()], 1)]);
    }

    #[test]
    fn histogram_vec_shares_handles() {
        let v = HistogramVec::new();
        let h1 = v.with(&["detect", "row", "1"]);
        let h2 = v.with(&["detect", "row", "1"]);
        h1.record(10);
        h2.record(20);
        let snap = v.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.count(), 2);
    }
}
