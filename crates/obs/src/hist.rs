//! Lock-free log-bucketed histograms.
//!
//! Layout: values 0..63 get exact unit buckets; above that, each
//! power-of-two octave `[2^m, 2^(m+1))` is split into 64 equal
//! sub-buckets, so the bucket width is at most `2^(m-6)` and the
//! worst-case relative error of a reported quantile is `1/64 ≈ 1.6%`.
//! The whole table is `59 * 64 = 3776` atomic `u64` buckets (~30 KiB),
//! covering the full `u64` range with no configuration.
//!
//! Recording is one relaxed `fetch_add` per value (plus count/sum/min/max
//! bookkeeping, all relaxed atomics) — no locks, no allocation, safe to
//! share across any number of threads. Reads take a [`HistogramSnapshot`]
//! and answer quantile/mean/cumulative questions from the copy.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave (64).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one unit-resolution octave block for 0..64, then
/// 58 more blocks covering octaves 6..=63.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Number of buckets in every [`Histogram`] (3776).
pub fn bucket_count() -> usize {
    BUCKETS
}

/// Bucket index for a recorded value.
///
/// Values below 64 map to exact unit buckets; larger values map to
/// `(m - 5) * 64 + sub` where `m` is the value's highest set bit and
/// `sub` its next six bits.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let m = 63 - value.leading_zeros();
        let sub = (value >> (m - SUB_BITS)) & (SUB - 1);
        ((m - SUB_BITS + 1) as u64 * SUB + sub) as usize
    }
}

/// Inclusive upper edge of a bucket: the largest value that maps to
/// `index`. Quantiles report this edge, so they never under-report.
pub fn bucket_upper_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        index
    } else {
        let block = index >> SUB_BITS; // = m - SUB_BITS + 1 >= 1
        let sub = index & (SUB - 1);
        let m = block + u64::from(SUB_BITS) - 1;
        let width = 1u64 << (m - u64::from(SUB_BITS));
        // Lower edge is (64 + sub) << (m - 6); the bucket spans `width`
        // values. Saturate at u64::MAX for the topmost bucket.
        let lower = (SUB + sub) << (m - u64::from(SUB_BITS));
        lower.saturating_add(width - 1)
    }
}

/// A lock-free histogram of `u64` samples (typically microseconds).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Exemplar slots: the last trace id recorded into each bucket via
    /// [`Histogram::record_with_trace`] (0 = none). A relaxed store per
    /// sample — last writer wins, which is exactly the exemplar contract.
    exemplars: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            exemplars,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// [`Histogram::record`], additionally remembering `trace` as the
    /// bucket's exemplar so a scrape can link the bucket to a fetchable
    /// trace. Trace id 0 never occurs (ids start at 1), so it doubles as
    /// the empty-slot sentinel.
    pub fn record_with_trace(&self, value: u64, trace: Option<u64>) {
        self.record(value);
        if let Some(t) = trace {
            if t != 0 {
                self.exemplars[bucket_index(value)].store(t, Ordering::Relaxed);
            }
        }
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// [`Histogram::record_duration`] with an exemplar trace id.
    pub fn record_duration_with_trace(&self, d: std::time::Duration, trace: Option<u64>) {
        self.record_with_trace(d.as_micros().min(u128::from(u64::MAX)) as u64, trace);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state for reading. Concurrent recording makes the
    /// copy slightly torn (a racing sample may be missing from some
    /// fields); all derived statistics are still within one in-flight
    /// sample of exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let exemplars: Vec<u64> = self
            .exemplars
            .iter()
            .map(|e| e.load(Ordering::Relaxed))
            .collect();
        // Derive the total from the buckets themselves so quantile walks
        // always terminate even if `count` raced ahead of a bucket bump.
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            exemplars,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    exemplars: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            exemplars: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper edge of
    /// the bucket holding the target rank — at most ~1.6% above the true
    /// value, never below it. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest value with cumulative frequency
        // >= q * count, with rank at least 1.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the observed max so sparse top buckets don't
                // inflate the tail past anything actually recorded.
                return bucket_upper_edge(idx).min(self.max);
            }
        }
        self.max
    }

    /// Number of samples with value `<=` the given bound, counting whole
    /// buckets: a bucket is included exactly when its upper edge is
    /// `<= bound`. For Prometheus `le` ladders this yields a valid
    /// cumulative histogram (monotone, ending at `count` for `+Inf`).
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 && bucket_upper_edge(idx) <= bound {
                total += c;
            }
        }
        total
    }

    /// Merge another snapshot into this one (bucket-wise addition).
    /// Associative and commutative, so shard-level histograms can be
    /// combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, &b) in self.exemplars.iter_mut().zip(&other.exemplars) {
            if b != 0 {
                *a = b;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Per-bucket counts (length [`bucket_count`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Whether any bucket holds an exemplar trace id.
    pub fn has_exemplars(&self) -> bool {
        self.exemplars.iter().any(|&t| t != 0)
    }

    /// The exemplar for the value range `(lower, upper]`: the last trace
    /// id recorded into a non-empty bucket whose upper edge lies in the
    /// range, together with that edge as the exemplar's representative
    /// value. Range semantics match the Prometheus `le` ladder, so each
    /// exposition bucket gets an exemplar that actually fell into it.
    pub fn exemplar_between(&self, lower: u64, upper: u64) -> Option<(u64, u64)> {
        let mut best = None;
        for (idx, &t) in self.exemplars.iter().enumerate() {
            if t == 0 || self.counts[idx] == 0 {
                continue;
            }
            let edge = bucket_upper_edge(idx);
            if edge > lower && edge <= upper {
                best = Some((t, edge));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..64u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_edge(v as usize), v);
        }
    }

    #[test]
    fn edges_are_consistent_with_indexing() {
        // Every bucket's upper edge must map back to the same bucket, and
        // edge+1 must map to the next.
        for idx in 0..BUCKETS - 1 {
            let edge = bucket_upper_edge(idx);
            assert_eq!(bucket_index(edge), idx, "edge {edge} of bucket {idx}");
            assert_eq!(bucket_index(edge + 1), idx + 1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        for v in [1u64, 17, 100, 999, 123_456, 9_999_999] {
            let h = Histogram::new();
            h.record(v);
            let q = h.snapshot().quantile(0.5);
            assert!(q >= v, "quantile {q} under-reports {v}");
            assert!(
                q - v <= v / 32 + 1,
                "quantile {q} off by more than bound for {v}"
            );
        }
        h.record(0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn quantiles_over_uniform_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((495..=515).contains(&p50), "p50 = {p50}");
        assert!((980..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
    }

    #[test]
    fn cumulative_le_is_monotone_and_complete() {
        let h = Histogram::new();
        for v in [3u64, 70, 70, 5_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.cumulative_le(0), 0);
        assert_eq!(s.cumulative_le(3), 1);
        let mut prev = 0;
        for bound in [1u64, 10, 100, 1_000, 10_000, 10_000_000] {
            let c = s.cumulative_le(bound);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(s.cumulative_le(u64::MAX), 5);
    }

    #[test]
    fn exemplars_remember_last_trace_per_bucket() {
        let h = Histogram::new();
        h.record_with_trace(100, Some(0xa1));
        h.record_with_trace(100, Some(0xa2)); // same bucket: last wins
        h.record_with_trace(1_000_000, Some(0xbb));
        h.record(5_000_000); // no trace: slot untouched
        let s = h.snapshot();
        assert!(s.has_exemplars());
        assert_eq!(s.exemplar_between(0, 200).map(|(t, _)| t), Some(0xa2));
        let (t, v) = s.exemplar_between(200, 2_000_000).unwrap();
        assert_eq!(t, 0xbb);
        assert!((1_000_000..=1_016_000).contains(&v), "edge {v}");
        // The traceless sample's range has no exemplar.
        assert_eq!(s.exemplar_between(2_000_000, u64::MAX), None);
        // record_with_trace(None) behaves like record.
        let h2 = Histogram::new();
        h2.record_with_trace(10, None);
        assert!(!h2.snapshot().has_exemplars());
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
