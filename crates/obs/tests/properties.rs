//! Property tests for the observability substrate: histogram bucketing
//! error bounds, merge associativity, lock-free concurrent recording, and
//! span-tree assembly under eviction.

use hummer_obs::{bucket_index, bucket_upper_edge, Histogram, HistogramSnapshot, Tracer};
use proptest::prelude::*;

proptest! {
    /// Every recorded value's reported quantile stays within the bucket
    /// error bound: never below the true value, never more than ~1.6%
    /// (1/32 + 1 slack here) above it.
    #[test]
    fn quantile_within_bucket_error_bound(value in 0u64..u64::MAX / 2) {
        let h = Histogram::new();
        h.record(value);
        let q = h.snapshot().quantile(0.5);
        prop_assert!(q >= value, "quantile {} under-reports {}", q, value);
        prop_assert!(
            q - value <= value / 32 + 1,
            "quantile {} exceeds error bound for {}",
            q,
            value
        );
    }

    /// The bucket a value maps to must contain it: the value is at most
    /// the bucket's upper edge, and above the previous bucket's edge.
    #[test]
    fn bucket_index_and_edges_agree(value in proptest::collection::vec(0u64..u64::MAX, 1..8)) {
        for v in value {
            let idx = bucket_index(v);
            prop_assert!(v <= bucket_upper_edge(idx));
            if idx > 0 {
                prop_assert!(v > bucket_upper_edge(idx - 1));
            }
        }
    }

    /// Merging snapshots is associative: (a + b) + c == a + (b + c),
    /// including derived quantiles.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..10_000_000, 0..40),
        b in proptest::collection::vec(0u64..10_000_000, 0..40),
        c in proptest::collection::vec(0u64..10_000_000, 0..40),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        let mut left: HistogramSnapshot = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    /// Span trees nest correctly for arbitrary fan-outs: every recorded
    /// child appears under its parent, ordered by start offset.
    #[test]
    fn span_tree_assembly_preserves_nesting(fanout in 1usize..6, depth in 1usize..4) {
        let tracer = Tracer::with_capacity(4096);
        fn grow(span: &hummer_obs::Span, fanout: usize, depth: usize) {
            if depth == 0 {
                return;
            }
            for i in 0..fanout {
                let mut child = span.child(format!("d{depth}-c{i}"));
                child.count("i", i as u64);
                grow(&child, fanout, depth - 1);
            }
        }
        let trace_id;
        {
            let root = tracer.trace("root");
            trace_id = root.trace_id().unwrap();
            grow(&root, fanout, depth);
        }
        let expected: usize = (0..=depth).map(|d| fanout.pow(d as u32)).sum();
        let tree = tracer.trace_tree(trace_id).unwrap();
        prop_assert_eq!(tree.roots.len(), 1);
        prop_assert_eq!(tree.orphans, 0);
        prop_assert_eq!(tree.span_count(), expected);
        // Depth-first check: children sorted by start, nested under the
        // span that created them.
        fn check(node: &hummer_obs::TraceNode) -> proptest::TestCaseResult {
            let mut prev = 0;
            for child in &node.children {
                prop_assert!(child.record.parent == Some(node.record.id));
                prop_assert!(child.record.start_us >= node.record.start_us);
                prop_assert!(child.record.start_us >= prev);
                prev = child.record.start_us;
                check(child)?;
            }
            Ok(())
        }
        check(&tree.roots[0])?;
    }

    /// Ring eviction keeps exactly `capacity` newest spans and counts the
    /// evicted ones.
    #[test]
    fn ring_eviction_is_bounded_and_counted(capacity in 1usize..10, extra in 0usize..20) {
        let tracer = Tracer::with_capacity(capacity);
        let total = capacity + extra;
        {
            let root = tracer.trace("root");
            for i in 0..total.saturating_sub(1) {
                drop(root.child(format!("c{i}")));
            }
        }
        prop_assert_eq!(tracer.span_count(), total.min(capacity));
        prop_assert_eq!(tracer.dropped_spans() as usize, total.saturating_sub(capacity));
    }
}

/// Concurrent recording from N threads loses no counts: the histogram's
/// total and per-bucket sums equal the number of records issued.
#[test]
fn concurrent_recording_loses_no_counts() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;

    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Deterministic per-thread value stream spanning many octaves.
                let mut x = (t as u64 + 1) * 2_654_435_761;
                for _ in 0..PER_THREAD {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    hist.record(x >> (x % 50));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    let expected = (THREADS * PER_THREAD) as u64;
    assert_eq!(snap.count(), expected);
    assert_eq!(snap.bucket_counts().iter().sum::<u64>(), expected);
    assert!(snap.quantile(1.0) >= snap.quantile(0.5));
}

/// Ring eviction under concurrent writers: the ring is FIFO, so each
/// writer's *retained* spans are exactly a suffix of what it pushed
/// (oldest-first eviction, per writer), and the dropped counter is exact —
/// `total - capacity`, nothing lost or double-counted under contention.
#[test]
fn concurrent_eviction_is_oldest_first_and_exactly_counted() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 400;
    const CAPACITY: usize = 64;

    let tracer = Arc::new(Tracer::with_capacity(CAPACITY));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let root = tracer.trace("w");
                    let mut span = root.child("s");
                    span.count("t", t as u64);
                    span.count("i", i as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = (THREADS * PER_THREAD * 2) as u64; // root + child per iteration
    assert_eq!(tracer.span_count(), CAPACITY);
    assert_eq!(tracer.dropped_spans(), total - CAPACITY as u64);

    // Oldest-first per writer: because each thread pushes its "s" spans in
    // increasing `i` order and eviction pops the front, the `i` values that
    // survive for one thread must be strictly increasing AND contiguous up
    // to that thread's last span — a suffix, never a gap.
    let retained = tracer.drain();
    let mut by_thread: [Vec<u64>; THREADS] = Default::default();
    for r in &retained {
        if r.name != "s" {
            continue;
        }
        let get = |key: &str| {
            r.counters
                .iter()
                .find(|(n, _)| n == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        by_thread[get("t") as usize].push(get("i"));
    }
    for (t, is) in by_thread.iter().enumerate() {
        for pair in is.windows(2) {
            assert_eq!(
                pair[1],
                pair[0] + 1,
                "thread {t} retained a non-suffix (gapped) span set: {is:?}"
            );
        }
        if let Some(&last) = is.last() {
            assert_eq!(
                last,
                (PER_THREAD - 1) as u64,
                "thread {t}'s newest span was evicted before older ones: {is:?}"
            );
        }
    }
}

/// Concurrent coordinators splicing remote batches: no stitched tree ever
/// contains a dangling parent, even when every worker ships overlapping
/// span-id ranges (each capture tracer starts counting from 1) into the
/// same shared ring at the same time.
#[test]
fn concurrent_splices_never_dangle() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const BATCHES: usize = 3;

    let tracer = Arc::new(Tracer::with_capacity(4096));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let root = tracer.trace("query");
                let trace_id = root.trace_id().unwrap();
                for b in 0..BATCHES {
                    // Worker side: fresh capture tracer per batch, so the
                    // shipped ids collide across threads and batches.
                    let capture = Tracer::with_capacity(64);
                    {
                        let batch =
                            capture.adopt_remote(trace_id, root.span_id().unwrap(), "worker_batch");
                        let shard = batch.child("shard");
                        drop(shard.child("score"));
                        drop(shard.child("cluster"));
                    }
                    let shipped = capture.drain();
                    assert_eq!(shipped.len(), 4);
                    let call = root.child("worker_call");
                    call.splice_remote(&format!("w{t}-{b}"), &shipped);
                }
                trace_id
            })
        })
        .collect();
    let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for id in ids {
        let tree = tracer.trace_tree(id).expect("trace present");
        assert_eq!(tree.orphans, 0, "dangling parent after splice");
        assert_eq!(tree.roots.len(), 1);
        // root + per batch: worker_call + worker_batch + shard + 2 leaves.
        assert_eq!(tree.span_count(), 1 + BATCHES * 5);
        // Every spliced span carries its own worker's node label — no
        // cross-thread leakage through the id remap.
        fn check_nodes(node: &hummer_obs::TraceNode) {
            if let Some(label) = node.record.node.as_deref() {
                for child in &node.children {
                    assert_eq!(child.record.node.as_deref(), Some(label));
                }
            }
            for child in &node.children {
                check_nodes(child);
            }
        }
        check_nodes(&tree.roots[0]);
    }
}

proptest! {
    /// Splicing an arbitrarily shaped remote subtree preserves its span
    /// count and produces a fully connected tree: every non-root span's
    /// parent is present, zero orphans, all spliced records node-labeled.
    #[test]
    fn splice_preserves_shape_without_dangling_parents(
        fanout in 1usize..5,
        depth in 1usize..4,
    ) {
        let capture = Tracer::with_capacity(4096);
        fn grow(span: &hummer_obs::Span, fanout: usize, depth: usize) {
            if depth == 0 {
                return;
            }
            for _ in 0..fanout {
                let child = span.child("stage");
                grow(&child, fanout, depth - 1);
            }
        }
        let tracer = Tracer::with_capacity(4096);
        let trace_id;
        {
            let root = tracer.trace("query");
            trace_id = root.trace_id().unwrap();
            {
                let batch = capture.adopt_remote(
                    trace_id,
                    root.span_id().unwrap(),
                    "worker_batch",
                );
                grow(&batch, fanout, depth);
            }
            let shipped = capture.drain();
            let call = root.child("worker_call");
            call.splice_remote("w1", &shipped);
        }
        let subtree: usize = (0..=depth).map(|d| fanout.pow(d as u32)).sum();
        let tree = tracer.trace_tree(trace_id).expect("trace present");
        prop_assert_eq!(tree.orphans, 0);
        prop_assert_eq!(tree.roots.len(), 1);
        prop_assert_eq!(tree.span_count(), 2 + subtree);
        fn all_labeled(node: &hummer_obs::TraceNode) -> bool {
            node.record.node.as_deref() == Some("w1")
                && node.children.iter().all(all_labeled)
        }
        let call = &tree.roots[0].children[0];
        prop_assert!(call.children.iter().all(all_labeled));
    }
}

/// Concurrent tracing from N threads: every thread's spans land in the
/// ring (capacity is ample), and each trace assembles into its own tree.
#[test]
fn concurrent_tracing_keeps_traces_separate() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const SPANS: usize = 50;

    let tracer = Arc::new(Tracer::with_capacity(THREADS * (SPANS + 1)));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let root = tracer.trace("root");
                let id = root.trace_id().unwrap();
                for i in 0..SPANS {
                    let mut c = root.child("work");
                    c.count("i", i as u64);
                }
                id
            })
        })
        .collect();
    let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(tracer.span_count(), THREADS * (SPANS + 1));
    for id in ids {
        let tree = tracer.trace_tree(id).unwrap();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.span_count(), SPANS + 1);
    }
}
