//! Property tests for the observability substrate: histogram bucketing
//! error bounds, merge associativity, lock-free concurrent recording, and
//! span-tree assembly under eviction.

use hummer_obs::{bucket_index, bucket_upper_edge, Histogram, HistogramSnapshot, Tracer};
use proptest::prelude::*;

proptest! {
    /// Every recorded value's reported quantile stays within the bucket
    /// error bound: never below the true value, never more than ~1.6%
    /// (1/32 + 1 slack here) above it.
    #[test]
    fn quantile_within_bucket_error_bound(value in 0u64..u64::MAX / 2) {
        let h = Histogram::new();
        h.record(value);
        let q = h.snapshot().quantile(0.5);
        prop_assert!(q >= value, "quantile {} under-reports {}", q, value);
        prop_assert!(
            q - value <= value / 32 + 1,
            "quantile {} exceeds error bound for {}",
            q,
            value
        );
    }

    /// The bucket a value maps to must contain it: the value is at most
    /// the bucket's upper edge, and above the previous bucket's edge.
    #[test]
    fn bucket_index_and_edges_agree(value in proptest::collection::vec(0u64..u64::MAX, 1..8)) {
        for v in value {
            let idx = bucket_index(v);
            prop_assert!(v <= bucket_upper_edge(idx));
            if idx > 0 {
                prop_assert!(v > bucket_upper_edge(idx - 1));
            }
        }
    }

    /// Merging snapshots is associative: (a + b) + c == a + (b + c),
    /// including derived quantiles.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..10_000_000, 0..40),
        b in proptest::collection::vec(0u64..10_000_000, 0..40),
        c in proptest::collection::vec(0u64..10_000_000, 0..40),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        let mut left: HistogramSnapshot = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    /// Span trees nest correctly for arbitrary fan-outs: every recorded
    /// child appears under its parent, ordered by start offset.
    #[test]
    fn span_tree_assembly_preserves_nesting(fanout in 1usize..6, depth in 1usize..4) {
        let tracer = Tracer::with_capacity(4096);
        fn grow(span: &hummer_obs::Span, fanout: usize, depth: usize) {
            if depth == 0 {
                return;
            }
            for i in 0..fanout {
                let mut child = span.child(format!("d{depth}-c{i}"));
                child.count("i", i as u64);
                grow(&child, fanout, depth - 1);
            }
        }
        let trace_id;
        {
            let root = tracer.trace("root");
            trace_id = root.trace_id().unwrap();
            grow(&root, fanout, depth);
        }
        let expected: usize = (0..=depth).map(|d| fanout.pow(d as u32)).sum();
        let tree = tracer.trace_tree(trace_id).unwrap();
        prop_assert_eq!(tree.roots.len(), 1);
        prop_assert_eq!(tree.orphans, 0);
        prop_assert_eq!(tree.span_count(), expected);
        // Depth-first check: children sorted by start, nested under the
        // span that created them.
        fn check(node: &hummer_obs::TraceNode) -> proptest::TestCaseResult {
            let mut prev = 0;
            for child in &node.children {
                prop_assert!(child.record.parent == Some(node.record.id));
                prop_assert!(child.record.start_us >= node.record.start_us);
                prop_assert!(child.record.start_us >= prev);
                prev = child.record.start_us;
                check(child)?;
            }
            Ok(())
        }
        check(&tree.roots[0])?;
    }

    /// Ring eviction keeps exactly `capacity` newest spans and counts the
    /// evicted ones.
    #[test]
    fn ring_eviction_is_bounded_and_counted(capacity in 1usize..10, extra in 0usize..20) {
        let tracer = Tracer::with_capacity(capacity);
        let total = capacity + extra;
        {
            let root = tracer.trace("root");
            for i in 0..total.saturating_sub(1) {
                drop(root.child(format!("c{i}")));
            }
        }
        prop_assert_eq!(tracer.span_count(), total.min(capacity));
        prop_assert_eq!(tracer.dropped_spans() as usize, total.saturating_sub(capacity));
    }
}

/// Concurrent recording from N threads loses no counts: the histogram's
/// total and per-bucket sums equal the number of records issued.
#[test]
fn concurrent_recording_loses_no_counts() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;

    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Deterministic per-thread value stream spanning many octaves.
                let mut x = (t as u64 + 1) * 2_654_435_761;
                for _ in 0..PER_THREAD {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    hist.record(x >> (x % 50));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    let expected = (THREADS * PER_THREAD) as u64;
    assert_eq!(snap.count(), expected);
    assert_eq!(snap.bucket_counts().iter().sum::<u64>(), expected);
    assert!(snap.quantile(1.0) >= snap.quantile(0.5));
}

/// Concurrent tracing from N threads: every thread's spans land in the
/// ring (capacity is ample), and each trace assembles into its own tree.
#[test]
fn concurrent_tracing_keeps_traces_separate() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const SPANS: usize = 50;

    let tracer = Arc::new(Tracer::with_capacity(THREADS * (SPANS + 1)));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let root = tracer.trace("root");
                let id = root.trace_id().unwrap();
                for i in 0..SPANS {
                    let mut c = root.child("work");
                    c.count("i", i as u64);
                }
                id
            })
        })
        .collect();
    let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(tracer.span_count(), THREADS * (SPANS + 1));
    for id in ids {
        let tree = tracer.trace_tree(id).unwrap();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.span_count(), SPANS + 1);
    }
}
