//! # hummer-bench — experiment harness
//!
//! One binary per experiment of EXPERIMENTS.md (`exp1_syntax` …
//! `exp8_outerunion`) plus Criterion micro-benchmarks in `benches/`.
//! Each binary regenerates one table/figure of the reproduction: run
//! `cargo run -p hummer-bench --release --bin exp3_dumas` etc.

#![forbid(unsafe_code)]

/// Render a row-major table with a header as aligned plain text (the
/// format EXPERIMENTS.md records).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{c:<w$}  "));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("a  bb"));
        assert!(t.contains("1  2"));
    }
}
