//! E12 — durability cost curves and crash-recovery byte-identity.
//!
//! Three questions, answered on the scenario worlds and written to
//! `BENCH_durability.json`:
//!
//! 1. **What does logging cost on the serving path?** Delta and register
//!    throughput through `FusionService` in three modes: in-memory,
//!    durable with fsync-on-commit, durable with `--no-fsync`.
//! 2. **What does recovery cost as the WAL grows?** `CatalogStore::open`
//!    wall time at increasing WAL lengths, before and after compaction
//!    rolls the log into a snapshot.
//! 3. **What do snapshots cost?** Compaction (snapshot write + WAL
//!    rotation) and snapshot-only load time per world.
//!
//! Plus the hard gate: a "crashed" (dropped mid-flight, never compacted)
//! store is reopened and the recovered catalog must produce **byte-identical
//! prepared artifacts at parallelism degrees 1–4** to the in-memory
//! reference. A mismatch exits non-zero.

use hummer_bench::render_table;
use hummer_core::{prepare_tables, HummerConfig, MatcherConfig, Parallelism, SniffConfig};
use hummer_datagen::scenarios::{cd_shopping, student_rosters};
use hummer_datagen::GeneratedWorld;
use hummer_delta::TableDelta;
use hummer_engine::{csv, Table, Value};
use hummer_server::{FusionService, Json, ServiceConfig};
use hummer_store::{CatalogStore, StoreOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 2005;
const THROUGHPUT_DELTAS: usize = 48;
const WAL_LENGTHS: [usize; 4] = [0, 16, 64, 256];
const DEGREES: [usize; 4] = [1, 2, 3, 4];

fn config(par: Parallelism) -> HummerConfig {
    HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        ..Default::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    hummer_store::scratch::dir(&format!("exp12_{tag}"))
}

/// The alternating row-0 update deltas the loadgen mixed workload uses:
/// original ↔ perturbed, so consecutive deltas genuinely change content.
fn update_deltas(world: &GeneratedWorld) -> [TableDelta; 2] {
    let table = &world.sources[0].table;
    let alias = table.name().to_string();
    let original: Vec<Value> = table.rows()[0].values().to_vec();
    let mut perturbed = original.clone();
    if let Some(v) = perturbed.iter_mut().find(|v| matches!(v, Value::Text(_))) {
        *v = Value::text(format!("{v} upd"));
    }
    [
        TableDelta::new(&alias).update(0, perturbed),
        TableDelta::new(&alias).update(0, original),
    ]
}

/// Build a service in the given mode, upload the world, warm the prepared
/// cache, then time `THROUGHPUT_DELTAS` alternating update deltas.
fn delta_throughput(world: &GeneratedWorld, mode: &str) -> (f64, f64) {
    let dir = temp_dir(&format!("svc_{mode}"));
    let service = match mode {
        "memory" => FusionService::new(ServiceConfig::default()),
        _ => {
            let options = StoreOptions {
                fsync: mode == "fsync",
                compact_after_bytes: 0, // isolate logging cost from compaction
                group_commit_window_us: 0,
            };
            let (store, recovery) = CatalogStore::open(&dir, options).expect("open store");
            FusionService::with_store(ServiceConfig::default(), store, recovery)
        }
    };
    let mut aliases = Vec::new();
    let t0 = Instant::now();
    for s in &world.sources {
        let alias = s.table.name().to_string();
        service
            .put_table(&alias, &csv::write_csv_str(&s.table))
            .expect("upload");
        aliases.push(alias);
    }
    let register_ms = t0.elapsed().as_secs_f64() * 1e3;
    let sql = format!(
        "SELECT * FUSE FROM {} FUSE BY (objectID)",
        aliases.join(", ")
    );
    service.query(&sql).expect("warm query");

    let deltas = update_deltas(world);
    let alias = world.sources[0].table.name();
    let t0 = Instant::now();
    for i in 0..THROUGHPUT_DELTAS {
        service
            .apply_delta(alias, &deltas[i % 2])
            .expect("apply delta");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();
    (THROUGHPUT_DELTAS as f64 / elapsed, register_ms)
}

/// Prepared-artifact fingerprint under the byte-identity contract.
fn fingerprint(p: &hummer_core::PreparedSources) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        p.annotated.rows(),
        p.annotated.schema().names(),
        p.detection.pairs,
        p.detection.unsure,
        p.detection.cluster_ids,
        p.detection.attributes_used,
    )
}

/// Bit-exact table rendering (names, typed columns, raw values).
fn table_fp(t: &Table) -> String {
    format!("{:?}|{:?}|{:?}", t.name(), t.schema().columns(), t.rows())
}

struct RecoveryCell {
    wal_records: usize,
    wal_bytes: u64,
    recovery_pre_ms: f64,
    recovery_post_ms: f64,
    compact_ms: f64,
}

/// Populate a store with the world + `n` logged deltas; measure reopen time
/// pre- and post-compaction. Returns the cell plus (for the longest WAL)
/// the recovered tables for the identity gate.
fn recovery_cell(world: &GeneratedWorld, n: usize) -> (RecoveryCell, Vec<Table>) {
    let dir = temp_dir(&format!("rec_{n}"));
    let options = StoreOptions {
        fsync: true,
        compact_after_bytes: 0, // compaction is explicit below
        group_commit_window_us: 0,
    };
    {
        let (mut store, _) = CatalogStore::open(&dir, options.clone()).expect("open");
        for s in &world.sources {
            let v = store.allocate_version();
            store
                .log_register(s.table.name(), v, &s.table)
                .expect("log register");
        }
        let deltas = update_deltas(world);
        let alias = world.sources[0].table.name();
        for i in 0..n {
            let v = store.allocate_version();
            store
                .log_delta(alias, v, &deltas[i % 2])
                .expect("log delta");
        }
    } // crash: no compaction, no shutdown

    let t0 = Instant::now();
    let (mut store, recovery) = CatalogStore::open(&dir, options.clone()).expect("recover");
    let recovery_pre_ms = t0.elapsed().as_secs_f64() * 1e3;
    let wal_bytes = store.stats().wal_bytes;
    let recovered: Vec<Table> = recovery.tables.iter().map(|t| t.table.clone()).collect();

    // Roll the WAL into a snapshot, then measure the snapshot-seeded reopen.
    let entries: Vec<hummer_store::SnapshotEntry<'_>> = recovery
        .tables
        .iter()
        .map(|t| hummer_store::SnapshotEntry {
            alias: &t.alias,
            version: t.version,
            table: &t.table,
        })
        .collect();
    let t0 = Instant::now();
    store.compact(&entries).expect("compact");
    let compact_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(store);
    let t0 = Instant::now();
    let (_store, post) = CatalogStore::open(&dir, options).expect("reopen post-compaction");
    let recovery_post_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(post.replayed_records, 0, "post-compaction WAL is empty");

    std::fs::remove_dir_all(&dir).ok();
    (
        RecoveryCell {
            wal_records: n + world.sources.len(),
            wal_bytes,
            recovery_pre_ms,
            recovery_post_ms,
            compact_ms,
        },
        recovered,
    )
}

/// The hard gate: recovered catalog ≡ reference catalog, byte-for-byte,
/// through the whole prepare pipeline at degrees 1–4.
fn identity_gate(world: &GeneratedWorld, recovered: &[Table]) -> bool {
    // Recovery lists tables alias-sorted; align with the world's source
    // order by name so prepare sees the same table order on both sides.
    let reference: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
    let mut recovered: Vec<&Table> = recovered.iter().collect();
    recovered.sort_by_key(|t| {
        reference
            .iter()
            .position(|w| w.name() == t.name())
            .unwrap_or(usize::MAX)
    });
    for (r, w) in recovered.iter().zip(&reference) {
        if table_fp(r) != table_fp(w) {
            eprintln!("FAIL: recovered table {} differs from pre-crash", r.name());
            return false;
        }
    }
    let want = fingerprint(
        &prepare_tables(&reference, &config(Parallelism::sequential())).expect("prepare"),
    );
    for &degree in &DEGREES {
        let got = fingerprint(
            &prepare_tables(&recovered, &config(Parallelism::degree(degree)))
                .expect("prepare recovered"),
        );
        if got != want {
            eprintln!("FAIL: recovered fusion differs at degree {degree}");
            return false;
        }
    }
    true
}

fn main() -> ExitCode {
    println!("E12 — durability: logging cost, recovery curves, snapshot cost\n");
    let worlds: Vec<(&str, GeneratedWorld)> = vec![
        ("student_rosters_small", student_rosters(150, SEED)),
        ("cd_shopping_medium", cd_shopping(400, SEED)),
    ];

    let mut world_reports = Vec::new();
    let mut throughput_rows = Vec::new();
    let mut recovery_rows = Vec::new();
    for (name, world) in &worlds {
        // 1. Logged mutation throughput vs in-memory.
        let mut modes = Vec::new();
        let mut memory_rps = 0.0;
        for mode in ["memory", "nofsync", "fsync"] {
            let (deltas_per_sec, register_ms) = delta_throughput(world, mode);
            if mode == "memory" {
                memory_rps = deltas_per_sec;
            }
            throughput_rows.push(vec![
                name.to_string(),
                mode.to_string(),
                format!("{deltas_per_sec:.0}"),
                format!("{:.2}", memory_rps / deltas_per_sec.max(1e-9)),
                format!("{register_ms:.1}"),
            ]);
            modes.push(
                Json::object()
                    .with("mode", mode)
                    .with("deltas_per_sec", deltas_per_sec)
                    .with("slowdown_vs_memory", memory_rps / deltas_per_sec.max(1e-9))
                    .with("register_world_ms", register_ms),
            );
        }

        // 2. Recovery time vs WAL length, pre/post compaction; keep the
        //    longest run's recovered tables for the identity gate.
        let mut curve = Vec::new();
        let mut longest_recovered: Vec<Table> = Vec::new();
        for &n in &WAL_LENGTHS {
            let (cell, recovered) = recovery_cell(world, n);
            recovery_rows.push(vec![
                name.to_string(),
                cell.wal_records.to_string(),
                cell.wal_bytes.to_string(),
                format!("{:.1}", cell.recovery_pre_ms),
                format!("{:.1}", cell.recovery_post_ms),
                format!("{:.1}", cell.compact_ms),
            ]);
            curve.push(
                Json::object()
                    .with("wal_records", cell.wal_records)
                    .with("wal_bytes", cell.wal_bytes)
                    .with("recovery_ms_pre_compaction", cell.recovery_pre_ms)
                    .with("recovery_ms_post_compaction", cell.recovery_post_ms)
                    .with("compaction_ms", cell.compact_ms),
            );
            longest_recovered = recovered;
        }

        // 3. The byte-identity gate on the longest (most replay-heavy) run.
        if !identity_gate(world, &longest_recovered) {
            return ExitCode::FAILURE;
        }
        println!(
            "{name}: recovered catalog byte-identical through prepare at degrees 1-4 \
             (longest WAL: {} records)",
            WAL_LENGTHS.last().unwrap() + world.sources.len(),
        );

        world_reports.push(
            Json::object()
                .with("scenario", *name)
                .with("sources", world.sources.len())
                .with(
                    "source_rows",
                    world.sources.iter().map(|s| s.table.len()).sum::<usize>(),
                )
                .with("logged_throughput", Json::Arr(modes))
                .with("recovery_curve", Json::Arr(curve))
                .with("identical_after_recovery_degrees_1_4", true),
        );
    }

    println!(
        "\nlogged-delta throughput (end-to-end service path, incl. cache upgrade):\n{}",
        render_table(
            &["world", "mode", "deltas/s", "x vs memory", "register ms"],
            &throughput_rows
        )
    );
    println!(
        "recovery time vs WAL length:\n{}",
        render_table(
            &[
                "world",
                "wal records",
                "wal bytes",
                "recover ms (pre)",
                "recover ms (post)",
                "compact ms"
            ],
            &recovery_rows
        )
    );

    let report = Json::object()
        .with("experiment", "exp12_durability")
        .with(
            "contract",
            "CatalogStore recovery reproduces the pre-crash catalog byte-identically; \
             prepared artifacts over the recovered catalog equal the in-memory reference \
             at parallelism degrees 1-4",
        )
        .with("worlds", Json::Arr(world_reports));
    let path = "BENCH_durability.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_durability.json");
    println!("wrote {path}");
    println!("PASS: byte-identity held on every world and degree");
    ExitCode::SUCCESS
}
