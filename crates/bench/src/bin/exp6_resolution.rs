//! E6 — the conflict-resolution function catalog (§2.4): per-function
//! correctness against an oracle on controlled clusters, plus throughput.

use hummer_bench::{f3, render_table};
use hummer_engine::{Row, Schema, Table, Value};
use hummer_fusion::{fuse, FunctionRegistry, FusionSpec, ResolutionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Build a table of `clusters` clusters, each with 2–6 member tuples whose
/// `v` column carries controlled conflicts; `recency` is a companion date.
fn clustered_table(clusters: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::of_names(&["key", "v", "recency", "sourceID"]).unwrap();
    let mut t = Table::empty("C", schema);
    for k in 0..clusters {
        let size = rng.gen_range(2..=6);
        // The oracle value is k*10; conflicting variants are k*10 + delta.
        for m in 0..size {
            let v = if m == 0 {
                Value::Int((k * 10) as i64) // first value = the oracle
            } else if rng.gen_bool(0.3) {
                Value::Null
            } else {
                Value::Int((k * 10) as i64 + rng.gen_range(0..3))
            };
            let day = 1 + ((m * 7 + k) % 27) as u8;
            t.push(Row::from_values(vec![
                Value::Int(k as i64),
                v,
                Value::Date(hummer_engine::Date::new(2005, 3, day).unwrap()),
                Value::text(format!("s{m}")),
            ]))
            .unwrap();
        }
    }
    t
}

/// What the oracle expects per function, computed directly from the
/// cluster's value list.
fn oracle(func: &str, values: &[&Value], rows: &[(&Value, &Value)]) -> Value {
    let non_null: Vec<&Value> = values.iter().copied().filter(|v| !v.is_null()).collect();
    match func {
        "coalesce" => non_null
            .first()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        "first" => values.first().map(|v| (*v).clone()).unwrap_or(Value::Null),
        "last" => values.last().map(|v| (*v).clone()).unwrap_or(Value::Null),
        "min" => non_null
            .iter()
            .min_by(|a, b| a.cmp_total(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        "max" => non_null
            .iter()
            .max_by(|a, b| a.cmp_total(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        "count" => Value::Int(non_null.len() as i64),
        "sum" => {
            if non_null.is_empty() {
                Value::Null
            } else {
                Value::Int(non_null.iter().map(|v| v.as_f64().unwrap() as i64).sum())
            }
        }
        "vote" => {
            // Most frequent non-null value, first-seen tie-break (the
            // default Vote behaviour).
            let mut seen: Vec<(&Value, usize)> = Vec::new();
            for v in &non_null {
                match seen.iter_mut().find(|(u, _)| u.group_eq(v)) {
                    Some((_, c)) => *c += 1,
                    None => seen.push((v, 1)),
                }
            }
            let mut best: Option<(&Value, usize)> = None;
            for (v, c) in seen {
                if best.is_none_or(|(_, bc)| c > bc) {
                    best = Some((v, c));
                }
            }
            best.map(|(v, _)| v.clone()).unwrap_or(Value::Null)
        }
        "mostrecent" => {
            // max recency among non-null values
            rows.iter()
                .filter(|(v, _)| !v.is_null())
                .max_by(|a, b| a.1.cmp_total(b.1))
                .map(|(v, _)| (*v).clone())
                .unwrap_or(Value::Null)
        }
        other => panic!("no oracle for {other}"),
    }
}

fn main() {
    let registry = FunctionRegistry::standard();
    let t = clustered_table(500, 99);
    let key_idx = t.resolve("key").unwrap();
    let v_idx = t.resolve("v").unwrap();
    let r_idx = t.resolve("recency").unwrap();

    // Collect clusters for the oracle.
    let mut clusters: std::collections::BTreeMap<i64, Vec<usize>> = Default::default();
    for (i, row) in t.rows().iter().enumerate() {
        if let Value::Int(k) = row[key_idx] {
            clusters.entry(k).or_default().push(i);
        }
    }

    println!("E6 — resolution-function correctness and throughput (500 clusters)\n");
    let mut rows = Vec::new();
    for func in [
        "coalesce",
        "first",
        "last",
        "min",
        "max",
        "sum",
        "count",
        "vote",
        "mostrecent",
    ] {
        let spec = if func == "mostrecent" {
            ResolutionSpec::with_args("mostrecent", vec!["recency".into()])
        } else {
            ResolutionSpec::named(func)
        };
        let fspec = FusionSpec::by_key(vec!["key"]).resolve("v", spec);
        let t0 = Instant::now();
        let fused = fuse(&t, &fspec, &registry).unwrap();
        let elapsed = t0.elapsed();

        // Check against the oracle, cluster by cluster.
        let mut correct = 0usize;
        let fkey = fused.table.resolve("key").unwrap();
        let fv = fused.table.resolve("v").unwrap();
        for out_row in fused.table.rows() {
            let k = match out_row[fkey] {
                Value::Int(k) => k,
                _ => continue,
            };
            let members = &clusters[&k];
            let values: Vec<&Value> = members.iter().map(|&i| &t.rows()[i][v_idx]).collect();
            let pairs: Vec<(&Value, &Value)> = members
                .iter()
                .map(|&i| (&t.rows()[i][v_idx], &t.rows()[i][r_idx]))
                .collect();
            if oracle(func, &values, &pairs).group_eq(&out_row[fv]) {
                correct += 1;
            }
        }
        let total = fused.table.len();
        rows.push(vec![
            func.to_string(),
            format!("{correct}/{total}"),
            f3(correct as f64 / total as f64),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["function", "correct", "accuracy", "ms/500 clusters"],
            &rows
        )
    );

    // Throughput of the full fusion operator.
    println!("\nE6b — fusion operator throughput\n");
    let mut rows = Vec::new();
    for clusters in [1000usize, 5000, 20000] {
        let t = clustered_table(clusters, 7);
        let spec = FusionSpec::by_key(vec!["key"]).resolve("v", ResolutionSpec::named("vote"));
        let t0 = Instant::now();
        let fused = fuse(&t, &spec, &registry).unwrap();
        let elapsed = t0.elapsed();
        rows.push(vec![
            t.len().to_string(),
            fused.table.len().to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", t.len() as f64 / elapsed.as_secs_f64()),
        ]);
    }
    println!(
        "{}",
        render_table(&["input rows", "objects", "ms", "rows/s"], &rows)
    );
}
