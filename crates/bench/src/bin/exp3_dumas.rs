//! E3 — the DUMAS claims (§2.2): (a) "experimental evaluation shows that
//! the most similar tuples are in fact duplicates" → precision@k of the
//! TF-IDF ranking; (b) matching quality grows with the number k of
//! duplicates used and with cleaner data; (c) ablation: SoftTFIDF vs. plain
//! TF-IDF field comparison (soft_theta = 1.0 admits only exact tokens).

use hummer_bench::{f3, render_table};
use hummer_datagen::{
    correspondence_metrics, generate, precision_at_k, DirtyConfig, EntityKind, SourceSpec,
};
use hummer_matching::{match_tables, sniff_duplicates, MatcherConfig, SniffConfig};

/// A deliberately hard matching task: CD catalogs, where `Year` and
/// `Price` are numerically confusable, `Genre` has low cardinality, and
/// `Artist`/`Title` share vocabulary; no uniquely identifying key column.
fn world(entities: usize, typo_rate: f64, seed: u64) -> hummer_datagen::GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::Cd,
        entities,
        sources: vec![
            SourceSpec::plain("A"),
            SourceSpec::plain("B")
                .rename("Artist", "Interpret")
                .rename("Title", "AlbumTitle")
                .rename("Year", "Released")
                .rename("Price", "Cost")
                .rename("Genre", "Style")
                .shuffled(),
        ],
        coverage: 0.7,
        typo_rate,
        null_rate: 0.1,
        conflict_rate: 0.25,
        dup_within_source: 0.0,
        seed,
    })
}

fn main() {
    // (a) precision@k of the most-similar-tuple ranking.
    println!("E3a — precision@k of TF-IDF tuple ranking (500 entities, typo 10%)\n");
    let w = world(500, 0.1, 42);
    let pairs = sniff_duplicates(
        &w.sources[0].table,
        &w.sources[1].table,
        &SniffConfig {
            top_k: 100,
            min_similarity: 0.0,
            one_to_one: true,
        },
    );
    let ranked: Vec<(usize, usize)> = pairs.iter().map(|p| (p.left, p.right)).collect();
    // Gold pairs in (left-row, right-row) space.
    let gold: Vec<(usize, usize)> = {
        let mut g = Vec::new();
        for (i, &ei) in w.sources[0].entity_ids.iter().enumerate() {
            for (j, &ej) in w.sources[1].entity_ids.iter().enumerate() {
                if ei == ej {
                    g.push((i, j));
                }
            }
        }
        g
    };
    let mut rows = Vec::new();
    for k in [1usize, 2, 5, 10, 20, 50, 100] {
        rows.push(vec![k.to_string(), f3(precision_at_k(&ranked, &gold, k))]);
    }
    println!("{}", render_table(&["k", "precision@k"], &rows));

    // (b) matching F1 vs. number of duplicates used (k sweep) × typo rate.
    println!("\nE3b — schema-matching F1 vs. duplicates used (k) and typo rate (500 entities)\n");
    let mut rows = Vec::new();
    for typo in [0.0, 0.1, 0.2] {
        let w = world(500, typo, 7);
        let gold: Vec<(String, String)> = w.gold_renames[1]
            .iter()
            .filter(|(l, c)| !l.eq_ignore_ascii_case(c))
            .map(|(l, c)| (l.clone(), c.clone()))
            .collect();
        let mut row = vec![format!("{:.0}%", typo * 100.0)];
        for k in [1usize, 2, 3, 5, 10] {
            let cfg = MatcherConfig {
                sniff: SniffConfig {
                    top_k: k,
                    min_similarity: 0.3,
                    one_to_one: true,
                },
                ..Default::default()
            };
            let m = match_tables(&w.sources[0].table, &w.sources[1].table, &cfg);
            let predicted: Vec<(String, String)> = m
                .correspondences
                .iter()
                .map(|c| (c.right_column.clone(), c.left_column.clone()))
                .collect();
            row.push(f3(correspondence_metrics(&predicted, &gold).f1()));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["typo", "k=1", "k=2", "k=3", "k=5", "k=10"], &rows)
    );

    // (c) ablation: SoftTFIDF (θ=0.9) vs. hard TF-IDF (θ=1.0) field
    // comparison under typos.
    println!("\nE3c — ablation: SoftTFIDF vs. exact-token matching (k=10)\n");
    let mut rows = Vec::new();
    for typo in [0.0, 0.1, 0.2, 0.3] {
        let w = world(500, typo, 11);
        let gold: Vec<(String, String)> = w.gold_renames[1]
            .iter()
            .filter(|(l, c)| !l.eq_ignore_ascii_case(c))
            .map(|(l, c)| (l.clone(), c.clone()))
            .collect();
        let mut row = vec![format!("{:.0}%", typo * 100.0)];
        for theta in [0.9, 1.0] {
            let cfg = MatcherConfig {
                sniff: SniffConfig {
                    top_k: 10,
                    min_similarity: 0.3,
                    one_to_one: true,
                },
                soft_theta: theta,
                ..Default::default()
            };
            let m = match_tables(&w.sources[0].table, &w.sources[1].table, &cfg);
            let predicted: Vec<(String, String)> = m
                .correspondences
                .iter()
                .map(|c| (c.right_column.clone(), c.left_column.clone()))
                .collect();
            row.push(f3(correspondence_metrics(&predicted, &gold).f1()));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["typo", "soft θ=0.9", "hard θ=1.0"], &rows)
    );
}
