//! E11 — incremental fusion under source deltas: delta-apply vs.
//! from-scratch latency across delta kinds and sizes, with the hard
//! byte-identity gate.
//!
//! For each scenario world and each delta (update / insert / delete ×
//! size), the experiment:
//!
//! 1. prepares the original sources once (the artifacts a server would
//!    cache),
//! 2. applies the delta incrementally (`PreparedSources::apply_delta`) at
//!    parallelism degrees 1–4,
//! 3. re-prepares the updated sources from scratch,
//! 4. **asserts** that every incremental result — prepared artifacts *and*
//!    the `FusedView`-maintained fused table — is byte-identical to the
//!    from-scratch run, at every degree. A mismatch aborts with a non-zero
//!    exit code.
//!
//! `BENCH_incremental.json` records the latency curves: delta-apply time
//! should scale with the *delta* size, not the corpus size, except where a
//! corpus-statistics quantization boundary forces a (reported) full
//! rescore — inserts and deletes shift those counters, updates never do.

use hummer_bench::render_table;
use hummer_core::{
    prepare_tables, DeltaReport, HummerConfig, MatcherConfig, Parallelism, PreparedSources,
    SniffConfig,
};
use hummer_datagen::scenarios::{cd_shopping, student_rosters};
use hummer_datagen::GeneratedWorld;
use hummer_delta::{concat_mappings, FusedView, RowMapping, TableDelta};
use hummer_engine::{Table, Value};
use hummer_fusion::{fuse, FunctionRegistry};
use hummer_server::Json;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 2005;
const DELTA_SIZES: [usize; 4] = [1, 4, 16, 64];
const DEGREES: [usize; 4] = [1, 2, 3, 4];

fn config(par: Parallelism) -> HummerConfig {
    HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        ..Default::default()
    }
}

/// A bit-exact rendering of the prepared artifacts under the delta
/// contract: everything except the (run-scoped) work counters.
fn fingerprint(p: &PreparedSources) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        p.annotated.rows(),
        p.annotated.schema().names(),
        p.detection.pairs,
        p.detection.unsure,
        p.detection.cluster_ids,
        p.detection.attributes_used,
        p.match_results
            .iter()
            .map(|m| &m.correspondences)
            .collect::<Vec<_>>(),
    )
}

/// Build a delta of `kind` touching `size` rows of source 0.
fn build_delta(world: &GeneratedWorld, kind: &str, size: usize) -> TableDelta {
    let table = &world.sources[0].table;
    let n = table.len();
    let size = size.min(n / 2);
    let mut delta = TableDelta::new(table.name());
    match kind {
        "update" => {
            for r in 0..size {
                let mut values: Vec<Value> = table.rows()[r].values().to_vec();
                if let Some(v) = values.iter_mut().find(|v| matches!(v, Value::Text(_))) {
                    *v = Value::text(format!("{v} upd"));
                }
                delta = delta.update(r, values);
            }
        }
        "insert" => {
            for r in 0..size {
                let mut values: Vec<Value> = table.rows()[n - 1 - r].values().to_vec();
                if let Some(v) = values.iter_mut().find(|v| matches!(v, Value::Text(_))) {
                    *v = Value::text(format!("{v} new{r}"));
                }
                delta = delta.insert(values);
            }
        }
        "delete" => {
            for r in 0..size {
                delta = delta.delete(r);
            }
        }
        other => panic!("unknown delta kind {other}"),
    }
    delta
}

/// Apply `delta` to the world's sources; returns the updated tables and
/// the union-level row mapping.
fn updated_tables(world: &GeneratedWorld, delta: &TableDelta) -> (Vec<Table>, RowMapping) {
    let mut tables = Vec::new();
    let mut maps: Vec<RowMapping> = Vec::new();
    for (i, s) in world.sources.iter().enumerate() {
        if i == 0 {
            let (t, m) = delta.apply(&s.table).expect("delta applies");
            tables.push(t);
            maps.push(m);
        } else {
            tables.push(s.table.clone());
            maps.push(RowMapping::identity(s.table.len()));
        }
    }
    let mapping = concat_mappings(&maps).expect("mappings concatenate");
    (tables, mapping)
}

struct Measurement {
    kind: String,
    delta_rows: usize,
    delta_ms: f64,
    scratch_ms: f64,
    dirty_rows: usize,
    rescored_pairs: usize,
    carried_pairs: usize,
    full_rescore: bool,
    fused_reused: usize,
    fused_recomputed: usize,
}

/// Run one (world, kind, size) cell; `None` means a byte-identity failure.
#[allow(clippy::too_many_lines)]
fn run_cell(
    world: &GeneratedWorld,
    prepared: &PreparedSources,
    view_template: &FusedView,
    kind: &str,
    size: usize,
) -> Option<Measurement> {
    let registry = FunctionRegistry::standard();
    let delta = build_delta(world, kind, size);
    let delta_rows = delta.counts().total();
    let (tables, mapping) = updated_tables(world, &delta);
    let refs: Vec<&Table> = tables.iter().collect();

    // From-scratch reference over the updated sources.
    let t0 = Instant::now();
    let scratch = prepare_tables(&refs, &config(Parallelism::sequential())).expect("scratch");
    let scratch_ms = t0.elapsed().as_secs_f64() * 1e3;
    let scratch_fp = fingerprint(&scratch);
    let scratch_fused = fuse(
        &scratch.annotated,
        &hummer_fusion::FusionSpec::by_key(vec!["objectID"])
            .drop_column("objectID")
            .drop_column("sourceID"),
        &registry,
    )
    .expect("scratch fuse");

    // Incremental at every degree; all must match the reference.
    let mut delta_ms = f64::INFINITY;
    let mut report: Option<DeltaReport> = None;
    let mut fused_stats = None;
    for &degree in &DEGREES {
        let cfg = config(Parallelism::degree(degree));
        let t0 = Instant::now();
        let (upgraded, rep) = prepared
            .apply_delta(&refs, &mapping, &cfg)
            .expect("apply_delta");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if fingerprint(&upgraded) != scratch_fp {
            eprintln!(
                "FAIL: {} {kind} x{size} at degree {degree}: incremental != from-scratch",
                world.sources[0].table.name()
            );
            return None;
        }
        // Incrementally maintained fused view, same identity bar.
        let mut view = view_template.clone();
        let stats = view
            .apply_delta(
                &upgraded.annotated,
                &upgraded.detection,
                &mapping,
                &registry,
            )
            .expect("view delta");
        if view.table().rows() != scratch_fused.table.rows()
            || view.fused().conflict_count != scratch_fused.conflict_count
            || view.fused().sample_conflicts != scratch_fused.sample_conflicts
        {
            eprintln!(
                "FAIL: {} {kind} x{size} at degree {degree}: fused view != from-scratch fuse",
                world.sources[0].table.name()
            );
            return None;
        }
        if degree == 1 {
            delta_ms = ms;
            report = Some(rep);
            fused_stats = Some(stats);
        }
    }
    let report = report.expect("degree 1 ran");
    let fused_stats = fused_stats.expect("degree 1 ran");
    Some(Measurement {
        kind: kind.to_string(),
        delta_rows,
        delta_ms,
        scratch_ms,
        dirty_rows: report.detection.dirty_rows,
        rescored_pairs: report.detection.scored_pairs,
        carried_pairs: report.detection.carried_pairs,
        full_rescore: report.detection.full_rescore,
        fused_reused: fused_stats.fusion.reused,
        fused_recomputed: fused_stats.fusion.recomputed,
    })
}

fn main() -> ExitCode {
    println!("E11 — incremental fusion under source deltas\n");
    let worlds: Vec<(&str, GeneratedWorld)> = vec![
        ("student_rosters_small", student_rosters(150, SEED)),
        // Large enough that the quadratic stage (pair scoring) dominates a
        // cold prepare — the stage the delta path makes delta-sized.
        ("cd_shopping_medium", cd_shopping(600, SEED)),
    ];
    let registry = FunctionRegistry::standard();

    let mut world_reports = Vec::new();
    let mut table_rows = Vec::new();
    for (name, world) in &worlds {
        let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let t0 = Instant::now();
        let prepared = prepare_tables(&tables, &config(Parallelism::sequential())).expect("prep");
        let prepare_ms = t0.elapsed().as_secs_f64() * 1e3;
        let view = FusedView::new(
            &prepared.annotated,
            &prepared.detection,
            &[],
            &registry,
            Parallelism::sequential(),
        )
        .expect("view");
        println!(
            "{name}: {} union rows, cold prepare {prepare_ms:.0} ms",
            prepared.integrated.len()
        );

        let mut kind_reports = Vec::new();
        for kind in ["update", "insert", "delete"] {
            let mut size_reports = Vec::new();
            for &size in &DELTA_SIZES {
                let Some(m) = run_cell(world, &prepared, &view, kind, size) else {
                    return ExitCode::FAILURE;
                };
                table_rows.push(vec![
                    name.to_string(),
                    m.kind.clone(),
                    m.delta_rows.to_string(),
                    format!("{:.1}", m.delta_ms),
                    format!("{:.1}", m.scratch_ms),
                    format!("{:.1}x", m.scratch_ms / m.delta_ms.max(1e-9)),
                    m.dirty_rows.to_string(),
                    if m.full_rescore { "yes" } else { "no" }.to_string(),
                ]);
                size_reports.push(
                    Json::object()
                        .with("delta_rows", m.delta_rows)
                        .with("delta_apply_ms", m.delta_ms)
                        .with("from_scratch_ms", m.scratch_ms)
                        .with("speedup", m.scratch_ms / m.delta_ms.max(1e-9))
                        .with("dirty_rows", m.dirty_rows)
                        .with("rescored_pairs", m.rescored_pairs)
                        .with("carried_pairs", m.carried_pairs)
                        .with("full_rescore", m.full_rescore)
                        .with("fused_clusters_reused", m.fused_reused)
                        .with("fused_clusters_recomputed", m.fused_recomputed),
                );
            }
            kind_reports.push(
                Json::object()
                    .with("kind", kind)
                    .with("sizes", Json::Arr(size_reports)),
            );
        }
        world_reports.push(
            Json::object()
                .with("scenario", *name)
                .with("union_rows", prepared.integrated.len())
                .with("cold_prepare_ms", prepare_ms)
                .with("identical_to_from_scratch", true)
                .with(
                    "degrees_checked",
                    Json::Arr(DEGREES.iter().map(|&d| Json::Int(d as i64)).collect()),
                )
                .with("kinds", Json::Arr(kind_reports)),
        );
    }

    println!(
        "\n{}",
        render_table(
            &[
                "world",
                "kind",
                "rows",
                "delta ms",
                "scratch ms",
                "speedup",
                "dirty",
                "full"
            ],
            &table_rows
        )
    );
    println!("incremental output byte-identical to from-scratch on every world, kind, size, and degree\n");

    let report = Json::object()
        .with("experiment", "exp11_incremental")
        .with(
            "contract",
            "apply_delta == prepare_tables(from scratch) byte-identically (pairs, unsure, \
             clusters, annotated union, fused view) at degrees 1-4; stats are run-scoped",
        )
        .with("worlds", Json::Arr(world_reports));
    let path = "BENCH_incremental.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_incremental.json");
    println!("wrote {path}");
    println!("PASS: byte-identity held on every world, kind, size, and degree");
    ExitCode::SUCCESS
}
