//! E15 — the event-loop serving path under saturation.
//!
//! Four gates on the nonblocking serving rewrite (PR 8):
//!
//! 1. **Identity** — the event-loop server and the legacy blocking server
//!    return bit-identical fused results for every demo scenario at
//!    intra-query parallelism degrees 1–4 (the serving transport must not
//!    perturb pipeline output).
//! 2. **Tail latency at 16× the connections** — a mixed read/update load
//!    at 128 connections must keep p99 at or below the *old* blocking
//!    server's p99 at just 8 connections (190.463 ms, `BENCH_serving.json`).
//! 3. **Overload sheds, never stalls** — with `max_connections` below the
//!    offered concurrency, the server answers the excess with fast 503s
//!    and keeps serving afterwards.
//! 4. **Group commit** — concurrent writers through the WAL's group-commit
//!    path: fsync delta throughput must be ≥ 85% of no-fsync (one fsync
//!    amortized over a batch), where the sequential baseline managed ~80%
//!    (`BENCH_durability.json`).
//!
//! Writes `BENCH_serving2.json` and exits nonzero if any gate fails.

use hummer_bench::{f3, render_table};
use hummer_delta::TableDelta;
use hummer_engine::{csv, Value};
use hummer_server::loadgen::{
    http_request, run_load, scenario_worlds, update_pool_for_worlds, upload_world, LoadConfig,
};
use hummer_server::{
    CatalogStore, FusionService, HummerServer, Json, Parallelism, ServerConfig, ServiceConfig,
    ServingMode, StoreOptions,
};
use hummer_store::scratch;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// The old blocking server's p99 at 8 connections (BENCH_serving.json):
/// the ceiling the event loop must stay under at 128 connections.
const BASELINE_P99_MS: f64 = 190.463;
/// Minimum fsync/no-fsync throughput ratio through group commit.
const GROUP_COMMIT_FLOOR: f64 = 0.85;
/// Writers × records for the group-commit throughput measurement. 16
/// concurrent writers is what 128 connections at a 12.5% write ratio
/// offer; the batch has to be deep enough that one fsync's wall time is
/// filled by the other writers' (serialized) delta applies.
const WRITERS: usize = 16;
const RECORDS_PER_WRITER: usize = 40;
/// Leader linger for the fsync run (the `--group-commit-window-us` knob).
const WINDOW_US: u64 = 200;

const SCENARIO_NAMES: [&str; 4] = [
    "cd_shopping",
    "disaster_registry",
    "student_rosters",
    "cleansing_service",
];

fn start_server(
    mode: ServingMode,
    degree: usize,
    max_connections: usize,
) -> (String, impl FnOnce()) {
    let mut service = ServiceConfig::narrow_schema();
    service.pipeline.parallelism = Parallelism::degree(degree);
    let server = HummerServer::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        service,
        mode,
        max_connections,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, move || {
        handle.shutdown();
        join.join().expect("server thread");
    })
}

/// The fused `result` object of one query — the identity fingerprint.
fn query_result(addr: &str, sql: &str) -> String {
    let (status, body) =
        http_request(addr, "POST", "/query", "text/plain", sql.as_bytes()).expect("query");
    assert_eq!(status, 200, "{body}");
    Json::parse(&body)
        .expect("query response JSON")
        .get("result")
        .expect("result field")
        .to_string_compact()
}

/// Gate 1: blocking vs event fused output, degrees 1–4.
fn identity_gate() -> (bool, Vec<Json>) {
    let worlds = scenario_worlds(4, 40, 2005);
    let mut reports = Vec::new();
    let mut identical = true;
    for degree in 1..=4 {
        let mut fingerprints: Vec<Vec<String>> = Vec::new();
        for mode in [ServingMode::Event, ServingMode::Blocking] {
            let (addr, stop) = start_server(mode, degree, 1024);
            let mut per_world = Vec::new();
            for (i, world) in worlds.iter().enumerate() {
                let sql = upload_world(&addr, &format!("w{i}"), world).expect("upload world");
                per_world.push(query_result(&addr, &sql));
            }
            stop();
            fingerprints.push(per_world);
        }
        let same = fingerprints[0] == fingerprints[1];
        identical &= same;
        reports.push(
            Json::object()
                .with("degree", degree)
                .with("scenarios", SCENARIO_NAMES.len())
                .with("identical", same),
        );
    }
    (identical, reports)
}

/// One timed run of `WRITERS` concurrent delta writers through the full
/// serving path (`FusionService::apply_delta`: catalog update, prepared
/// cache upgrade, then WAL enqueue + group-commit wait); returns
/// (deltas/sec, batches, mean batch size). This mirrors the
/// `BENCH_durability.json` "delta throughput" measurement, now with the
/// WAL wait happening *outside* the catalog lock so concurrent writers
/// share one fsync.
fn group_commit_run(
    world: &hummer_datagen::GeneratedWorld,
    fsync: bool,
    window_us: u64,
) -> (f64, u64, f64) {
    let dir = scratch::dir(&format!("exp15_gc_{fsync}"));
    let options = StoreOptions {
        fsync,
        compact_after_bytes: 0, // isolate logging cost from compaction
        group_commit_window_us: window_us,
    };
    let (store, recovery) = CatalogStore::open(&dir, options).expect("open store");
    let service = Arc::new(FusionService::with_store(
        ServiceConfig::narrow_schema(),
        store,
        recovery,
    ));
    let mut aliases = Vec::new();
    for s in &world.sources {
        let alias = s.table.name().to_string();
        service
            .put_table(&alias, &csv::write_csv_str(&s.table))
            .expect("upload");
        aliases.push(alias);
    }
    // Warm the prepared cache so each delta pays the realistic incremental
    // cache-upgrade cost, as the mixed serving load does.
    let sql = format!(
        "SELECT * FUSE FROM {} FUSE BY (objectID)",
        aliases.join(", ")
    );
    service.query(&sql).expect("warm query");

    // Two alternating single-row updates, as the serving mixed load sends.
    let table = &world.sources[0].table;
    let alias = table.name().to_string();
    let original: Vec<Value> = table.rows()[0].values().to_vec();
    let mut perturbed = original.clone();
    if let Some(v) = perturbed.iter_mut().find(|v| matches!(v, Value::Text(_))) {
        *v = Value::text(format!("{v} upd"));
    }
    let deltas = [
        TableDelta::new(&alias).update(0, perturbed),
        TableDelta::new(&alias).update(0, original),
    ];

    let t0 = Instant::now();
    let handles: Vec<_> = (0..WRITERS)
        .map(|_| {
            let service = Arc::clone(&service);
            let alias = alias.clone();
            let deltas = deltas.clone();
            std::thread::spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    service
                        .apply_delta(&alias, &deltas[i % 2])
                        .expect("apply delta");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = service.store_stats().expect("durable service");
    std::fs::remove_dir_all(&dir).ok();
    let records = (WRITERS * RECORDS_PER_WRITER) as f64;
    // Registrations share the WAL, so subtract nothing: batches counts all
    // group commits, which the deltas dominate (RECORDS_PER_WRITER >> sources).
    let batches = stats.group_commits;
    (records / elapsed, batches, records / batches.max(1) as f64)
}

fn main() -> ExitCode {
    println!("E15 — event-loop serving: identity, 128-connection tail, overload, group commit\n");

    // ---- Gate 1: identity across serving modes, degrees 1-4. ----
    let (identical, identity_reports) = identity_gate();
    println!(
        "identity (event vs blocking, degrees 1-4): {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // ---- Gate 2: mixed load at 128 connections on the event loop. ----
    let (addr, stop) = start_server(ServingMode::Event, 1, 1024);
    let worlds = scenario_worlds(4, 40, 2005);
    let mut sql_pool = Vec::new();
    for (i, world) in worlds.iter().enumerate() {
        sql_pool.push(upload_world(&addr, &format!("w{i}"), world).expect("upload world"));
    }
    for sql in &sql_pool {
        query_result(&addr, sql); // warm the prepared-pipeline cache
    }
    let prefixed: Vec<(String, &hummer_datagen::GeneratedWorld)> = worlds
        .iter()
        .enumerate()
        .map(|(i, w)| (format!("w{i}"), w))
        .collect();
    let load = run_load(&LoadConfig {
        addr: addr.clone(),
        connections: 128,
        requests: 1280,
        sql_pool: sql_pool.clone(),
        update_every: 8, // 12.5% writes
        update_pool: update_pool_for_worlds(&prefixed),
    });
    let (_, metrics_body) =
        http_request(&addr, "GET", "/metrics.json", "text/plain", b"").expect("metrics");
    let serving = Json::parse(&metrics_body)
        .expect("metrics JSON")
        .get("serving")
        .cloned()
        .expect("serving section");
    stop();
    println!(
        "{}",
        render_table(
            &["conns", "requests", "ok", "err", "rejects", "rps", "p50", "p99", "p999"],
            &[vec![
                "128".into(),
                "1280".into(),
                load.ok.to_string(),
                load.errors.to_string(),
                load.rejects.to_string(),
                format!("{:.1}", load.throughput_rps),
                format!("{:.2}", load.p50_ms),
                format!("{:.2}", load.p99_ms),
                format!("{:.2}", load.p999_ms),
            ]],
        )
    );

    // ---- Gate 3: overload sheds with 503s and the server survives. ----
    let (addr, stop) = start_server(ServingMode::Event, 1, 16);
    let worlds_small = scenario_worlds(1, 40, 7);
    let sql = upload_world(&addr, "o0", &worlds_small[0]).expect("upload world");
    query_result(&addr, &sql);
    let overload = run_load(&LoadConfig::read_only(addr.clone(), 64, 512, vec![sql]));
    let (health_status, _) =
        http_request(&addr, "GET", "/healthz", "text/plain", b"").expect("healthz after overload");
    stop();
    println!(
        "overload (64 conns vs cap 16): ok {} rejects {} healthz-after {}",
        overload.ok, overload.rejects, health_status
    );

    // ---- Gate 4: group-commit fsync throughput vs no-fsync. ----
    // A serving-scale world: `delta.apply` rebuilds the table under the
    // catalog lock, so the per-delta compute is realistic and the batched
    // fsync overlaps the other writers' applies.
    let gc_world = scenario_worlds(1, 400, 2005).remove(0);
    let (nofsync_rps, nofsync_batches, nofsync_mean) = group_commit_run(&gc_world, false, 0);
    let (fsync_rps, fsync_batches, fsync_mean) = group_commit_run(&gc_world, true, WINDOW_US);
    let ratio = fsync_rps / nofsync_rps.max(1e-9);
    println!(
        "{}",
        render_table(
            &["mode", "records/s", "batches", "mean batch"],
            &[
                vec![
                    "nofsync".into(),
                    format!("{nofsync_rps:.0}"),
                    nofsync_batches.to_string(),
                    format!("{nofsync_mean:.1}"),
                ],
                vec![
                    format!("fsync+{WINDOW_US}us"),
                    format!("{fsync_rps:.0}"),
                    fsync_batches.to_string(),
                    format!("{fsync_mean:.1}"),
                ],
            ],
        )
    );
    println!(
        "group-commit fsync/no-fsync throughput ratio: {}\n",
        f3(ratio)
    );

    // ---- Report + gates. ----
    let gate_p99 = load.p99_ms <= BASELINE_P99_MS && load.errors == 0;
    let gate_overload = overload.rejects >= 1 && health_status == 200;
    let gate_ratio = ratio >= GROUP_COMMIT_FLOOR;
    let report = Json::object()
        .with("experiment", "exp15_serving")
        .with(
            "contract",
            "event-loop serving: fused output identical to the blocking server at degrees 1-4; \
             p99 at 128 connections no worse than the blocking server's p99 at 8; overload \
             answers 503 and keeps serving; group-commit fsync throughput >= 85% of no-fsync",
        )
        .with("identity", Json::Arr(identity_reports))
        .with(
            "load",
            Json::object()
                .with("connections", 128usize)
                .with("requests", 1280usize)
                .with("update_every", 8usize)
                .with("ok", load.ok)
                .with("errors", load.errors)
                .with("rejects", load.rejects)
                .with("updates_ok", load.updates_ok)
                .with("throughput_rps", load.throughput_rps)
                .with("p50_ms", load.p50_ms)
                .with("p99_ms", load.p99_ms)
                .with("p999_ms", load.p999_ms)
                .with("baseline_p99_at_8_conns_ms", BASELINE_P99_MS)
                .with("serving_counters", serving),
        )
        .with(
            "overload",
            Json::object()
                .with("max_connections", 16usize)
                .with("connections", 64usize)
                .with("requests", 512usize)
                .with("ok", overload.ok)
                .with("rejects", overload.rejects)
                .with("healthz_after", health_status as usize),
        )
        .with(
            "group_commit",
            Json::object()
                .with("writers", WRITERS)
                .with("records_per_writer", RECORDS_PER_WRITER)
                .with("window_us", WINDOW_US)
                .with("nofsync_records_per_sec", nofsync_rps)
                .with("fsync_records_per_sec", fsync_rps)
                .with("fsync_batches", fsync_batches as usize)
                .with("fsync_mean_batch", fsync_mean)
                .with("ratio", ratio),
        )
        .with(
            "gates",
            Json::object()
                .with("identity_degrees_1_4", identical)
                .with("p99_at_128_conns_le_baseline", gate_p99)
                .with("overload_sheds_and_survives", gate_overload)
                .with("group_commit_ratio_ge_085", gate_ratio),
        );
    let path = "BENCH_serving2.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_serving2.json");
    println!("wrote {path}");

    let mut failed = false;
    if !identical {
        eprintln!("FAIL: event/blocking fused outputs diverged");
        failed = true;
    }
    if !gate_p99 {
        eprintln!(
            "FAIL: p99 {:.2} ms at 128 connections exceeds the {BASELINE_P99_MS} ms baseline \
             (or load errors: {})",
            load.p99_ms, load.errors
        );
        failed = true;
    }
    if !gate_overload {
        eprintln!(
            "FAIL: overload did not shed cleanly (rejects {}, healthz {health_status})",
            overload.rejects
        );
        failed = true;
    }
    if !gate_ratio {
        eprintln!(
            "FAIL: group-commit fsync throughput is {}x of no-fsync, below {GROUP_COMMIT_FLOOR}",
            f3(ratio)
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("PASS: all four serving gates hold");
    ExitCode::SUCCESS
}
