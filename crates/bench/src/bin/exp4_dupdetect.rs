//! E4 — duplicate-detection semantics (§2.3): precision/recall/F1 across
//! the similarity threshold θ, the contradiction-vs-missing asymmetry, and
//! transitive closure vs. raw pair set.

use hummer_bench::{f3, render_table};
use hummer_datagen::{cluster_pair_metrics, generate, pair_metrics, DirtyConfig, EntityKind};
use hummer_dupdetect::{detect_duplicates, DetectorConfig, TupleSimilarity, UnionFind};
use hummer_engine::ops::outer_union;
use hummer_engine::{table, Table};

fn integrated_world(entities: usize, seed: u64) -> (Table, Vec<usize>) {
    let cfg = DirtyConfig {
        typo_rate: 0.1,
        null_rate: 0.08,
        conflict_rate: 0.12,
        dup_within_source: 0.2,
        coverage: 0.8,
        ..DirtyConfig::two_sources(EntityKind::Person, entities, seed)
    };
    let w = generate(&cfg);
    let refs: Vec<&Table> = w.sources.iter().map(|s| &s.table).collect();
    let u = outer_union(&refs, "U").unwrap();
    (u, w.gold_union_entity_ids())
}

fn main() {
    // (a) threshold sweep.
    println!("E4a — duplicate detection P/R/F1 vs. threshold θ (1 000 entities)\n");
    let (u, gold) = integrated_world(1000, 4);
    let mut rows = Vec::new();
    for theta in [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9] {
        let det = detect_duplicates(
            &u,
            &DetectorConfig {
                threshold: theta,
                unsure_threshold: theta - 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let pr = cluster_pair_metrics(&det.cluster_ids, &gold);
        rows.push(vec![
            format!("{theta:.2}"),
            det.pairs.len().to_string(),
            det.unsure.len().to_string(),
            det.object_count().to_string(),
            f3(pr.precision),
            f3(pr.recall),
            f3(pr.f1()),
        ]);
    }
    println!(
        "{}",
        render_table(&["θ", "pairs", "unsure", "objects", "P", "R", "F1"], &rows)
    );

    // (b) contradiction vs missing asymmetry on a controlled pair.
    println!("\nE4b — contradictions reduce similarity, missing values do not\n");
    let t = table! {
        "T" => ["Name", "City", "Age"];
        ["John Smith", "Berlin", 34],     // 0 reference
        ["John Smith", "Berlin", 34],     // 1 identical
        ["John Smith", (), 34],           // 2 city missing
        ["John Smith", "Munich", 34],     // 3 city contradicts
        ["John Smith", (), ()],           // 4 city and age missing
        ["John Smith", "Munich", 71],     // 5 city and age contradict
    };
    let m = TupleSimilarity::new(&t, vec![0, 1, 2]);
    let mut rows = Vec::new();
    for (label, j) in [
        ("identical", 1usize),
        ("1 missing", 2),
        ("1 contradiction", 3),
        ("2 missing", 4),
        ("2 contradictions", 5),
    ] {
        rows.push(vec![label.to_string(), f3(m.similarity(&t, 0, j))]);
    }
    println!(
        "{}",
        render_table(&["variant vs. reference", "similarity"], &rows)
    );

    // (c) transitive closure vs. raw pair set.
    println!("\nE4c — transitive closure vs. raw duplicate pairs (θ = 0.75)\n");
    let det = detect_duplicates(&u, &DetectorConfig::default()).unwrap();
    let raw: Vec<(usize, usize)> = det.pairs.iter().map(|p| (p.left, p.right)).collect();
    // Gold pairs from entity ids.
    let mut gold_pairs = Vec::new();
    {
        let mut by: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
        for (row, &e) in gold.iter().enumerate() {
            by.entry(e).or_default().push(row);
        }
        for mem in by.values() {
            for i in 0..mem.len() {
                for j in (i + 1)..mem.len() {
                    gold_pairs.push((mem[i], mem[j]));
                }
            }
        }
    }
    let raw_pr = pair_metrics(&raw, &gold_pairs);
    let mut uf = UnionFind::new(u.len());
    for &(a, b) in &raw {
        uf.union(a, b);
    }
    let closed_pr = cluster_pair_metrics(&uf.cluster_ids(), &gold);
    let rows = vec![
        vec![
            "raw pairs".to_string(),
            f3(raw_pr.precision),
            f3(raw_pr.recall),
            f3(raw_pr.f1()),
        ],
        vec![
            "transitive closure".to_string(),
            f3(closed_pr.precision),
            f3(closed_pr.recall),
            f3(closed_pr.f1()),
        ],
    ];
    println!("{}", render_table(&["pair set", "P", "R", "F1"], &rows));
}
