//! E1 — Fig. 1 reproduction: grammar conformance of the Fuse By dialect.
//!
//! Walks every production of the paper's syntax diagram (plus the SQL
//! subset HumMer supports) and reports parse + execution status and result
//! cardinality. The executable equivalent of the figure.

use hummer_bench::render_table;
use hummer_engine::table;
use hummer_fusion::FunctionRegistry;
use hummer_query::{parse, run_query, TableSet};

fn catalog() -> TableSet {
    let mut c = TableSet::new();
    c.add(table! {
        "EE_Student" => ["Name", "Age"];
        ["Alice", 22], ["Bob", 24], ["Carol", 21],
    });
    c.add(table! {
        "CS_Students" => ["Name", "Age", "Semester"];
        ["Alice", 23, 5], ["Dora", 19, 1],
    });
    c.add(table! {
        "Shops" => ["Item", "Price", "Store", "Updated"];
        ["CD1", 10.0, "A", hummer_engine::Date::parse("2005-01-01").unwrap()],
        ["CD1", 9.0, "B", hummer_engine::Date::parse("2005-02-01").unwrap()],
        ["CD2", 15.0, "A", hummer_engine::Date::parse("2005-01-15").unwrap()],
    });
    c
}

fn main() {
    let statements: &[(&str, &str)] = &[
        ("colref select item", "SELECT Name FUSE FROM EE_Student FUSE BY (Name)"),
        ("RESOLVE(colref) default", "SELECT RESOLVE(Age) FUSE FROM EE_Student FUSE BY (Name)"),
        ("RESOLVE(colref, function)", "SELECT RESOLVE(Age, max) FUSE FROM EE_Student FUSE BY (Name)"),
        ("wildcard *", "SELECT * FUSE FROM EE_Student FUSE BY (Name)"),
        ("mixed list + *", "SELECT Name, RESOLVE(Age, max), * FUSE FROM EE_Student FUSE BY (Name)"),
        ("FUSE FROM multi-table", "SELECT * FUSE FROM EE_Student, CS_Students FUSE BY (Name)"),
        ("where-clause", "SELECT * FUSE FROM EE_Student WHERE Age > 21 FUSE BY (Name)"),
        ("FUSE BY multi-column", "SELECT * FUSE FROM EE_Student FUSE BY (Name, Age)"),
        ("FUSE FROM w/o FUSE BY", "SELECT * FUSE FROM EE_Student, CS_Students"),
        ("plain SPJ", "SELECT EE_Student.Name FROM EE_Student, CS_Students WHERE EE_Student.Name = CS_Students.Name"),
        ("HAVING + ORDER BY", "SELECT Name, RESOLVE(Age, max) AS a FUSE FROM EE_Student, CS_Students FUSE BY (Name) HAVING a > 20 ORDER BY a DESC"),
        ("GROUP BY + aggregates", "SELECT Name, count(*) FROM EE_Student GROUP BY Name"),
        ("global aggregate", "SELECT avg(Age), count(*) FROM EE_Student"),
        ("paper example (§2.1)", "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)"),
        ("CHOOSE(source)", "SELECT RESOLVE(Price, choose('Shops')) FUSE FROM Shops FUSE BY (Item)"),
        ("COALESCE", "SELECT RESOLVE(Price, coalesce) FUSE FROM Shops FUSE BY (Item)"),
        ("FIRST / LAST", "SELECT RESOLVE(Price, first), RESOLVE(Updated, last) FUSE FROM Shops FUSE BY (Item)"),
        ("VOTE", "SELECT RESOLVE(Store, vote) FUSE FROM Shops FUSE BY (Item)"),
        ("GROUP (function)", "SELECT RESOLVE(Store, group) FUSE FROM Shops FUSE BY (Item)"),
        ("CONCAT", "SELECT RESOLVE(Store, concat('; ')) FUSE FROM Shops FUSE BY (Item)"),
        ("annotated CONCAT", "SELECT RESOLVE(Price, annotatedconcat) FUSE FROM Shops FUSE BY (Item)"),
        ("SHORTEST / LONGEST", "SELECT RESOLVE(Store, shortest), RESOLVE(Item, longest) FUSE FROM Shops FUSE BY (Item)"),
        ("MOST RECENT", "SELECT RESOLVE(Price, mostrecent(Updated)) FUSE FROM Shops FUSE BY (Item)"),
        ("MIN/MAX/SUM/AVG/MEDIAN", "SELECT RESOLVE(Price, median) FUSE FROM Shops FUSE BY (Item)"),
        ("LIKE / IN / IS NULL", "SELECT * FROM Shops WHERE Item LIKE 'CD%' AND Store IN ('A','B') AND Price IS NOT NULL"),
        ("scalar functions", "SELECT * FROM Shops WHERE LOWER(Store) = 'a'"),
    ];

    let registry = FunctionRegistry::standard();
    let cat = catalog();
    let mut rows = Vec::new();
    let mut ok = 0;
    for (label, sql) in statements {
        let parsed = parse(sql).is_ok();
        let (executed, cardinality) = match run_query(sql, &cat, &registry) {
            Ok(out) => (true, out.table.len().to_string()),
            Err(e) => (false, format!("{e}")),
        };
        if parsed && executed {
            ok += 1;
        }
        rows.push(vec![
            label.to_string(),
            if parsed { "yes" } else { "NO" }.to_string(),
            if executed { "yes" } else { "NO" }.to_string(),
            cardinality,
        ]);
    }
    println!("E1 — Fuse By grammar conformance (Fig. 1)\n");
    println!(
        "{}",
        render_table(&["production", "parses", "executes", "|result|"], &rows)
    );
    println!("{ok}/{} productions parse and execute", statements.len());
}
