//! E14 — the observability contract: tracing is effectively free.
//!
//! Two claims are checked on the ≈ 10k-row `person_scale` world:
//!
//! 1. **Overhead** (hard gate): the fully-instrumented pipeline — an
//!    enabled [`Tracer`] recording every stage span (match → transform →
//!    detect → cluster → fuse) with counters — must finish within
//!    [`OVERHEAD_BAR_PCT`] of the bare pipeline, aggregated over both
//!    execution layouts at parallelism degrees 1–4. Bare and instrumented
//!    reps are interleaved so clock drift and thermal state hit both
//!    sides equally; the minimum of [`REPS`] runs is compared.
//! 2. **Identity** (hard requirement): instrumentation must not perturb
//!    the pipeline. For every layout × degree cell the fused table,
//!    cluster ids, conflict samples, and match correspondences of the
//!    instrumented run must be bit-identical to the bare run.
//!
//! The run also sanity-checks that spans actually landed in the ring —
//! a "0% overhead" result from a silently-disabled tracer would be
//! meaningless — and writes `BENCH_observability.json`.

use hummer_bench::{f3, render_table};
use hummer_core::{
    fuse_prepared_traced, prepare_tables_traced, ExecutionLayout, HummerConfig, MatcherConfig,
    ObsConfig, Parallelism, PipelineOutcome, SniffConfig,
};
use hummer_datagen::scenarios::person_scale;
use hummer_fusion::FunctionRegistry;
use hummer_obs::Tracer;
use hummer_server::Json;
use std::process::ExitCode;
use std::time::Instant;

const DEGREES: [usize; 4] = [1, 2, 3, 4];
const SEED: u64 = 2005;
/// Entities in the world: ≈ 10k union rows at coverage 0.7 × 2 sources.
const LARGE_ENTITIES: usize = 7200;
/// Sorted-neighborhood window (all-pairs at 10k rows is a ~50M-pair sweep).
const WINDOW: usize = 15;
/// Maximum tolerated instrumented-over-bare overhead, in percent.
const OVERHEAD_BAR_PCT: f64 = 3.0;
/// Timing repetitions per cell; minima are compared.
const REPS: usize = 3;
/// Span-ring capacity for the instrumented runs (the `hummer-serve`
/// default).
const RING: usize = 65536;

fn config(layout: ExecutionLayout, par: Parallelism, obs: ObsConfig) -> HummerConfig {
    let mut cfg = HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        layout,
        obs,
        ..Default::default()
    };
    cfg.detector.candidates = hummer_dupdetect::CandidateSpec::SortedNeighborhood {
        key: vec!["Name".into()],
        window: WINDOW,
    };
    cfg
}

/// One full pipeline run (prepare + fuse) under `cfg`, every stage span a
/// child of a fresh per-run trace — the same shape the server gives a
/// `POST /query`. Returns the outcome and the wall milliseconds.
fn run_once(tables: &[&hummer_engine::Table], cfg: &HummerConfig) -> (PipelineOutcome, f64) {
    let registry = FunctionRegistry::standard();
    let t0 = Instant::now();
    let root = cfg.obs.tracer.trace("exp14_query");
    let prepared = prepare_tables_traced(tables, cfg, &root).expect("prepare");
    let out =
        fuse_prepared_traced(&prepared, &[], &registry, cfg.parallelism, &root).expect("fuse");
    drop(root);
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// A bit-exact rendering of everything the pipeline produced (`{:?}` on
/// `f64` prints the shortest roundtrip form, so different bits render
/// differently).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{:?}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.conflict_count,
        out.sample_conflicts,
        out.match_results
            .iter()
            .map(|m| &m.correspondences)
            .collect::<Vec<_>>(),
    )
}

fn main() -> ExitCode {
    println!("E14 — observability overhead: instrumented vs. bare pipeline\n");

    let world = person_scale(LARGE_ENTITIES, SEED);
    let tables: Vec<&hummer_engine::Table> = world.sources.iter().map(|s| &s.table).collect();

    // One shared tracer for every instrumented cell, like a server would
    // hold; its ring fills with real stage spans as the matrix runs.
    let tracer = Tracer::with_capacity(RING);

    let mut rows = Vec::new();
    let mut cell_reports = Vec::new();
    let mut union_rows = 0usize;
    let mut bare_total = 0.0f64;
    let mut instr_total = 0.0f64;
    for layout in [ExecutionLayout::Row, ExecutionLayout::Columnar] {
        for &d in &DEGREES {
            let par = Parallelism::degree(d);
            let bare_cfg = config(layout, par, ObsConfig::default());
            let instr_cfg = config(
                layout,
                par,
                ObsConfig {
                    tracer: tracer.clone(),
                },
            );

            // Interleave reps: bare, instrumented, bare, instrumented, …
            // so neither side systematically sees a warmer cache or a
            // throttled core.
            let mut bare_ms = f64::INFINITY;
            let mut instr_ms = f64::INFINITY;
            let mut bare_out = None;
            let mut instr_out = None;
            for _ in 0..REPS {
                let (out, ms) = run_once(&tables, &bare_cfg);
                bare_ms = bare_ms.min(ms);
                bare_out = Some(out);
                let (out, ms) = run_once(&tables, &instr_cfg);
                instr_ms = instr_ms.min(ms);
                instr_out = Some(out);
            }
            let bare_out = bare_out.expect("REPS >= 1");
            let instr_out = instr_out.expect("REPS >= 1");
            union_rows = bare_out.result.rows().len().max(union_rows);

            if fingerprint(&bare_out) != fingerprint(&instr_out) {
                eprintln!(
                    "FAIL: instrumentation changed the fused output \
                     ({layout:?}, {d} thread(s))"
                );
                return ExitCode::FAILURE;
            }

            let overhead_pct = (instr_ms / bare_ms.max(1e-9) - 1.0) * 100.0;
            bare_total += bare_ms;
            instr_total += instr_ms;
            let layout_name = match layout {
                ExecutionLayout::Row => "row",
                ExecutionLayout::Columnar => "columnar",
            };
            rows.push(vec![
                layout_name.into(),
                d.to_string(),
                format!("{bare_ms:.1}"),
                format!("{instr_ms:.1}"),
                format!("{overhead_pct:+.2}%"),
            ]);
            cell_reports.push(
                Json::object()
                    .with("layout", layout_name)
                    .with("degree", d)
                    .with("bare_ms", bare_ms)
                    .with("instrumented_ms", instr_ms)
                    .with("overhead_pct", overhead_pct)
                    .with("identical", true),
            );
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "layout",
                "threads",
                "bare ms",
                "instrumented ms",
                "overhead"
            ],
            &rows
        )
    );
    println!("all {} layout x degree cells bit-identical\n", rows.len());

    // The instrumented side must have actually traced something.
    let spans_recorded = tracer.span_count() as u64 + tracer.dropped_spans();
    let sample = tracer
        .recent_traces(1)
        .first()
        .and_then(|&id| tracer.trace_tree(id));
    let sample_spans = sample.as_ref().map(|t| t.span_count()).unwrap_or(0);
    if spans_recorded == 0 || sample_spans < 2 {
        eprintln!(
            "FAIL: instrumented runs recorded {spans_recorded} span(s) \
             (sample trace has {sample_spans}) — the tracer was not live, \
             so the overhead number proves nothing"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "tracer: {spans_recorded} spans recorded; last trace is a \
         {sample_spans}-span tree"
    );

    // The aggregate gate: total instrumented wall time over the whole
    // matrix within the bar of total bare wall time. Per-cell numbers
    // jitter a few percent either way on a busy machine; the 8-cell
    // aggregate is what the contract holds.
    let overhead_pct = (instr_total / bare_total.max(1e-9) - 1.0) * 100.0;
    let passed = overhead_pct <= OVERHEAD_BAR_PCT;
    println!(
        "aggregate: bare {:.1} ms, instrumented {:.1} ms -> {}% overhead (bar {}%)\n",
        bare_total,
        instr_total,
        f3(overhead_pct),
        OVERHEAD_BAR_PCT
    );

    let report = Json::object()
        .with("experiment", "exp14_observability")
        .with(
            "world",
            Json::object()
                .with("scenario", "person_scale")
                .with("entities", LARGE_ENTITIES)
                .with("union_rows", union_rows)
                .with("window", WINDOW),
        )
        .with("cells", Json::Arr(cell_reports))
        .with(
            "spans",
            Json::object()
                .with("recorded", spans_recorded)
                .with("ring_capacity", RING)
                .with("sample_trace_spans", sample_spans),
        )
        .with(
            "gate",
            Json::object()
                .with("bare_total_ms", bare_total)
                .with("instrumented_total_ms", instr_total)
                .with("overhead_pct", overhead_pct)
                .with("bar_pct", OVERHEAD_BAR_PCT)
                .with("passed", passed),
        );
    let path = "BENCH_observability.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_observability.json");
    println!("wrote {path}");

    if !passed {
        eprintln!(
            "FAIL: tracing overhead is {}%, above the {OVERHEAD_BAR_PCT}% bar",
            f3(overhead_pct)
        );
        return ExitCode::FAILURE;
    }
    println!(
        "PASS: tracing overhead = {}% (<= {OVERHEAD_BAR_PCT}%), outputs bit-identical",
        f3(overhead_pct)
    );
    ExitCode::SUCCESS
}
