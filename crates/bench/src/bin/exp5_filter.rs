//! E5 — the comparison filter (§2.3: "the number of pairwise comparisons
//! are reduced by applying a filter (upper bound to the similarity
//! measure)") and sorted-neighborhood blocking: work saved vs. recall kept.

use hummer_bench::{f3, render_table};
use hummer_datagen::{cluster_pair_metrics, generate, DirtyConfig, EntityKind};
use hummer_dupdetect::{detect_duplicates, CandidateSpec, DetectorConfig};
use hummer_engine::ops::outer_union;
use hummer_engine::Table;
use std::time::Instant;

fn main() {
    println!("E5 — candidate pruning: naive vs. filter vs. blocking\n");
    let mut rows = Vec::new();
    for n in [250usize, 500, 1000, 2000, 4000] {
        let cfg = DirtyConfig {
            dup_within_source: 0.2,
            coverage: 0.8,
            ..DirtyConfig::two_sources(EntityKind::Person, n, n as u64)
        };
        let w = generate(&cfg);
        let refs: Vec<&Table> = w.sources.iter().map(|s| &s.table).collect();
        let u = outer_union(&refs, "U").unwrap();
        let gold = w.gold_union_entity_ids();

        for (label, det_cfg) in [
            (
                "naive",
                DetectorConfig {
                    use_filter: false,
                    ..Default::default()
                },
            ),
            (
                "filter",
                DetectorConfig {
                    use_filter: true,
                    ..Default::default()
                },
            ),
            (
                "blocking w=20",
                DetectorConfig {
                    use_filter: true,
                    candidates: CandidateSpec::SortedNeighborhood {
                        key: vec!["Name".into()],
                        window: 20,
                    },
                    ..Default::default()
                },
            ),
        ] {
            let t0 = Instant::now();
            let det = detect_duplicates(&u, &det_cfg).unwrap();
            let elapsed = t0.elapsed();
            let pr = cluster_pair_metrics(&det.cluster_ids, &gold);
            rows.push(vec![
                u.len().to_string(),
                label.to_string(),
                det.stats.candidates.to_string(),
                det.stats.compared.to_string(),
                det.stats.filtered_out.to_string(),
                f3(pr.recall),
                f3(pr.precision),
                format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "rows",
                "strategy",
                "candidates",
                "compared",
                "filtered",
                "recall",
                "precision",
                "ms"
            ],
            &rows
        )
    );
}
