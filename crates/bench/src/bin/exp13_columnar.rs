//! E13 — the columnar execution layer: byte-identity between the row and
//! columnar paths, and the single-thread speedups the layout buys.
//!
//! Three claims are checked:
//!
//! 1. **Identity** (hard requirement): for every scenario world, layout
//!    ([`ExecutionLayout::Row`] vs. [`ExecutionLayout::Columnar`]) and
//!    parallelism degree 1–4, the pipeline's output — fused table, cluster
//!    ids, conflict samples, match correspondences — must be bit-identical.
//!    A mismatch aborts the experiment.
//! 2. **Scoring throughput** (hard gate): on the ≈ 10k-row `person_scale`
//!    union, single-thread candidate-pair scoring through the columnar
//!    kernel must be ≥ 1.5× the row path, *including* the one-off cost of
//!    transposing the measure. The two scorings must also agree bit for
//!    bit (pairs, unsure, counters).
//! 3. **Transform / annotation** (reported, no gate): wall time of the
//!    per-cell-clone row transform vs. the column-splicing transform, and
//!    of the old clone-then-push `objectID` annotation vs. the current
//!    width-exact assembly.

use hummer_bench::{f3, render_table};
use hummer_core::{fuse_prepared_par, PreparedSources};
use hummer_core::{
    prepare_tables, ExecutionLayout, HummerConfig, MatcherConfig, Parallelism, PipelineOutcome,
    SniffConfig,
};
use hummer_datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, person_scale, student_rosters,
};
use hummer_datagen::GeneratedWorld;
use hummer_dupdetect::{
    annotate_object_ids, candidate_pairs, score_candidate_pairs, select_attributes,
    CandidateStrategy, ColumnarMeasure, DetectorConfig, HeuristicConfig, PairScorer,
    TupleSimilarity, OBJECT_ID_COLUMN,
};
use hummer_engine::{Column, ColumnType, Table, Value};
use hummer_fusion::FunctionRegistry;
use hummer_server::Json;
use std::process::ExitCode;
use std::time::Instant;

const DEGREES: [usize; 4] = [1, 2, 3, 4];
const SEED: u64 = 2005;
/// Entities per identity-matrix world (the four demo scenarios).
const CURVE_ENTITIES: usize = 120;
/// Entities in the large world: ≈ 10k union rows at coverage 0.7 × 2
/// sources — an order of magnitude past the paper-scale worlds.
const LARGE_ENTITIES: usize = 7200;
/// Sorted-neighborhood window for the large-world scoring measurement
/// (all-pairs at 10k rows is a ~50M-pair sweep; blocking is what a user
/// would run at this scale).
const WINDOW: usize = 15;
/// Required single-thread speedup of columnar over row pair scoring.
const SPEEDUP_BAR: f64 = 1.5;
/// Timing repetitions; the minimum is reported.
const REPS: usize = 3;

fn config(layout: ExecutionLayout, par: Parallelism) -> HummerConfig {
    HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        layout,
        ..Default::default()
    }
}

fn run_world(world: &GeneratedWorld, layout: ExecutionLayout, par: Parallelism) -> PipelineOutcome {
    let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
    let cfg = config(layout, par);
    let registry = FunctionRegistry::standard();
    let prepared = prepare_tables(&tables, &cfg).expect("prepare");
    fuse_prepared_par(&prepared, &[], &registry, par).expect("fuse")
}

/// A bit-exact rendering of everything the pipeline produced (`{:?}` on
/// `f64` prints the shortest roundtrip form, so different bits render
/// differently).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{:?}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.conflict_count,
        out.sample_conflicts,
        out.match_results
            .iter()
            .map(|m| &m.correspondences)
            .collect::<Vec<_>>(),
    )
}

/// Minimum wall-clock milliseconds of `f` over [`REPS`] runs.
fn time_min_ms<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("REPS >= 1"), best)
}

/// The pre-refactor `objectID` annotation: clone the table, then grow every
/// row by one cell (each push reallocates, since a cloned `Vec`'s capacity
/// equals its length). Kept here as the timing baseline.
fn annotate_baseline(table: &Table, cluster_ids: &[usize]) -> Table {
    let mut out = table.clone();
    out.add_column(Column::new(OBJECT_ID_COLUMN, ColumnType::Int), |i, _| {
        Value::Int(cluster_ids[i] as i64)
    })
    .expect("annotate");
    out
}

fn main() -> ExitCode {
    println!("E13 — columnar batches & vectorized similarity kernels\n");

    // ---- 1. Identity matrix: worlds × layouts × degrees -----------------
    let worlds: Vec<(&str, GeneratedWorld)> = vec![
        ("cd_shopping", cd_shopping(CURVE_ENTITIES, SEED)),
        ("disaster_registry", disaster_registry(CURVE_ENTITIES, SEED)),
        ("student_rosters", student_rosters(CURVE_ENTITIES, SEED)),
        ("cleansing_service", cleansing_service(CURVE_ENTITIES, SEED)),
    ];
    let mut identity_reports = Vec::new();
    for (name, world) in &worlds {
        let base = fingerprint(&run_world(
            world,
            ExecutionLayout::Row,
            Parallelism::degree(1),
        ));
        let mut checked = 0usize;
        for layout in [ExecutionLayout::Row, ExecutionLayout::Columnar] {
            for &d in &DEGREES {
                let fp = fingerprint(&run_world(world, layout, Parallelism::degree(d)));
                if fp != base {
                    eprintln!("FAIL: {name} diverged under {layout:?} at {d} thread(s)");
                    return ExitCode::FAILURE;
                }
                checked += 1;
            }
        }
        println!("{name}: {checked} layout x degree runs bit-identical");
        identity_reports.push(
            Json::object()
                .with("scenario", *name)
                .with("runs", checked)
                .with("identical", true),
        );
    }
    println!();

    // ---- 2. Large world: transform + annotation before/after -----------
    let large = person_scale(LARGE_ENTITIES, SEED);
    let tables: Vec<&Table> = large.sources.iter().map(|s| &s.table).collect();
    let registry = FunctionRegistry::standard();

    let row_cfg = config(ExecutionLayout::Row, Parallelism::degree(1));
    let col_cfg = config(ExecutionLayout::Columnar, Parallelism::degree(1));
    // Blocking: at 10k rows all-pairs is quadratic; use the same window the
    // scoring measurement uses.
    let blocking = hummer_dupdetect::CandidateSpec::SortedNeighborhood {
        key: vec!["Name".into()],
        window: WINDOW,
    };
    let (row_cfg, col_cfg) = {
        let mut r = row_cfg;
        let mut c = col_cfg;
        r.detector.candidates = blocking.clone();
        c.detector.candidates = blocking.clone();
        (r, c)
    };

    let (row_prep, row_prep_ms) =
        time_min_ms(|| prepare_tables(&tables, &row_cfg).expect("prepare row"));
    let (col_prep, col_prep_ms) =
        time_min_ms(|| prepare_tables(&tables, &col_cfg).expect("prepare columnar"));
    let integrated_rows = row_prep.integrated.len();
    println!(
        "large world: {} union rows; prepare {:.0} ms (row) vs {:.0} ms (columnar)",
        integrated_rows, row_prep_ms, col_prep_ms
    );

    // End-to-end identity on the large world too.
    let row_out = fuse_prepared_par(&row_prep, &[], &registry, Parallelism::degree(1)).unwrap();
    let col_out = fuse_prepared_par(&col_prep, &[], &registry, Parallelism::degree(1)).unwrap();
    if fingerprint(&row_out) != fingerprint(&col_out) {
        eprintln!("FAIL: large world fused output differs between layouts");
        return ExitCode::FAILURE;
    }
    println!("large world fused output bit-identical between layouts");

    // Transform in isolation: per-cell-clone row path vs. column splicing.
    let PreparedSources { match_results, .. } = &row_prep;
    let (_, xform_row_ms) = time_min_ms(|| {
        hummer_matching::integrate(&tables, match_results, "Integrated").expect("integrate")
    });
    let (col_integrated, xform_col_ms) = time_min_ms(|| {
        hummer_matching::integrate_columnar(&tables, match_results, "Integrated")
            .expect("integrate columnar")
    });
    assert_eq!(
        col_integrated.rows(),
        row_prep.integrated.rows(),
        "transform outputs must agree"
    );
    let xform_speedup = xform_row_ms / xform_col_ms.max(1e-9);

    // Annotation in isolation: clone-then-push baseline vs. width-exact.
    let cluster_ids = &row_prep.detection.cluster_ids;
    let (base_annot, annot_base_ms) =
        time_min_ms(|| annotate_baseline(&row_prep.integrated, cluster_ids));
    let (cur_annot, annot_cur_ms) =
        time_min_ms(|| annotate_object_ids(&row_prep.integrated, &row_prep.detection).unwrap());
    assert_eq!(
        base_annot.rows(),
        cur_annot.rows(),
        "annotation outputs must agree"
    );
    let annot_speedup = annot_base_ms / annot_cur_ms.max(1e-9);

    // ---- 3. Large world: single-thread pair-scoring throughput ---------
    // Score against the actual integrated union (sourceID included), the
    // same table a detection run sees.
    let union = &row_prep.integrated;
    let attrs = select_attributes(union, &HeuristicConfig::default());
    let measure = TupleSimilarity::new(union, attrs);
    let key_attrs = vec![union.resolve("Name").expect("Name column")];
    let candidates = candidate_pairs(
        union,
        &CandidateStrategy::SortedNeighborhood {
            key_attrs,
            window: WINDOW,
        },
    );
    let det_cfg = DetectorConfig::default();
    let seq = Parallelism::degree(1);

    let (row_scored, score_row_ms) = time_min_ms(|| {
        score_candidate_pairs(
            &PairScorer::Rows {
                table: union,
                measure: &measure,
            },
            &det_cfg,
            &candidates,
            seq,
        )
    });
    // The columnar timing includes the one-off transpose: that is the real
    // cost a detection run pays.
    let (col_scored, score_col_ms) = time_min_ms(|| {
        let cm = ColumnarMeasure::from_measure(&measure);
        score_candidate_pairs(&PairScorer::Columnar(&cm), &det_cfg, &candidates, seq)
    });

    let identical = row_scored.filtered_out == col_scored.filtered_out
        && row_scored.compared == col_scored.compared
        && row_scored.pairs.len() == col_scored.pairs.len()
        && row_scored.unsure.len() == col_scored.unsure.len()
        && row_scored
            .pairs
            .iter()
            .zip(&col_scored.pairs)
            .chain(row_scored.unsure.iter().zip(&col_scored.unsure))
            .all(|(a, b)| {
                a.left == b.left
                    && a.right == b.right
                    && a.similarity.to_bits() == b.similarity.to_bits()
            });
    if !identical {
        eprintln!("FAIL: row and columnar scorers disagree on the large world");
        return ExitCode::FAILURE;
    }
    let pairs_per_sec_row = candidates.len() as f64 / (score_row_ms / 1e3);
    let pairs_per_sec_col = candidates.len() as f64 / (score_col_ms / 1e3);
    let score_speedup = score_row_ms / score_col_ms.max(1e-9);

    println!(
        "{}",
        render_table(
            &["stage", "row ms", "columnar ms", "speedup"],
            &[
                vec![
                    "transform (outer union)".into(),
                    format!("{xform_row_ms:.1}"),
                    format!("{xform_col_ms:.1}"),
                    format!("{}x", f3(xform_speedup)),
                ],
                vec![
                    "objectID annotation".into(),
                    format!("{annot_base_ms:.1}"),
                    format!("{annot_cur_ms:.1}"),
                    format!("{}x", f3(annot_speedup)),
                ],
                vec![
                    format!("pair scoring ({} pairs)", candidates.len()),
                    format!("{score_row_ms:.1}"),
                    format!("{score_col_ms:.1}"),
                    format!("{}x", f3(score_speedup)),
                ],
            ],
        )
    );
    println!(
        "pair throughput: {:.0} pairs/s (row) vs {:.0} pairs/s (columnar)\n",
        pairs_per_sec_row, pairs_per_sec_col
    );

    // ---- Report ---------------------------------------------------------
    let gate_passed = score_speedup >= SPEEDUP_BAR;
    let report = Json::object()
        .with("experiment", "exp13_columnar")
        .with("identity", Json::Arr(identity_reports))
        .with(
            "large_world",
            Json::object()
                .with("entities", LARGE_ENTITIES)
                .with("union_rows", integrated_rows)
                .with("window", WINDOW)
                .with("candidate_pairs", candidates.len())
                .with("identical_between_layouts", true),
        )
        .with(
            "transform",
            Json::object()
                .with("row_ms", xform_row_ms)
                .with("columnar_ms", xform_col_ms)
                .with("speedup", xform_speedup),
        )
        .with(
            "annotation",
            Json::object()
                .with("baseline_ms", annot_base_ms)
                .with("current_ms", annot_cur_ms)
                .with("speedup", annot_speedup),
        )
        .with(
            "scoring_gate",
            Json::object()
                .with("threads", 1usize)
                .with("row_ms", score_row_ms)
                .with("columnar_ms", score_col_ms)
                .with("row_pairs_per_sec", pairs_per_sec_row)
                .with("columnar_pairs_per_sec", pairs_per_sec_col)
                .with("required_speedup", SPEEDUP_BAR)
                .with("measured_speedup", score_speedup)
                .with("passed", gate_passed),
        );
    let path = "BENCH_columnar.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_columnar.json");
    println!("wrote {path}");

    if !gate_passed {
        eprintln!(
            "FAIL: columnar scoring speedup is {}x, below the {SPEEDUP_BAR}x bar",
            f3(score_speedup)
        );
        return ExitCode::FAILURE;
    }
    println!(
        "PASS: columnar scoring speedup = {}x (>= {SPEEDUP_BAR}x), all outputs bit-identical",
        f3(score_speedup)
    );
    ExitCode::SUCCESS
}
