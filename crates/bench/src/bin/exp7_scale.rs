//! E7 — scalability of the ad-hoc ("virtual ETL") pipeline: wall time of
//! each stage as the input grows, with and without blocking.

use hummer_bench::{f3, ms, render_table};
use hummer_core::{Hummer, HummerConfig, MatcherConfig, SniffConfig};
use hummer_datagen::cluster_pair_metrics;
use hummer_datagen::scenarios::person_scale;
use hummer_dupdetect::CandidateSpec;

/// Above this entity count only the blocking strategy runs: all-pairs at
/// 7200 entities is a ~50M-comparison quadratic sweep that adds nothing
/// the 5000-entity point has not already shown.
const ALL_PAIRS_CUTOFF: usize = 5000;

fn main() {
    println!("E7 — pipeline scalability (two heterogeneous person sources)\n");
    let mut rows = Vec::new();
    // 7200 entities ≈ a 10k-row union — the columnar-path scale target.
    for n in [100usize, 500, 1000, 2000, 5000, 7200] {
        let w = person_scale(n, n as u64);

        for (label, blocking) in [("all-pairs", false), ("blocking", true)] {
            if !blocking && n > ALL_PAIRS_CUTOFF {
                continue;
            }
            let mut config = HummerConfig {
                matcher: MatcherConfig {
                    sniff: SniffConfig {
                        top_k: 10,
                        min_similarity: 0.3,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            };
            if blocking {
                config.detector.candidates = CandidateSpec::SortedNeighborhood {
                    key: vec!["Name".into()],
                    window: 15,
                };
            }
            let mut h = Hummer::with_config(config);
            for s in &w.sources {
                h.repository_mut()
                    .register_table(s.table.name().to_string(), s.table.clone())
                    .unwrap();
            }
            let out = h.fuse_sources(&["A", "B"], &[]).unwrap();
            let pr = cluster_pair_metrics(&out.detection.cluster_ids, &w.gold_union_entity_ids());
            rows.push(vec![
                out.integrated.len().to_string(),
                label.to_string(),
                ms(out.timings.matching),
                ms(out.timings.transformation),
                ms(out.timings.detection),
                ms(out.timings.fusion),
                ms(out.timings.total()),
                f3(pr.f1()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "rows",
                "strategy",
                "match_ms",
                "xform_ms",
                "detect_ms",
                "fuse_ms",
                "total_ms",
                "dupF1"
            ],
            &rows
        )
    );
}
