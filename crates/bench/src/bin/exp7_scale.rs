//! E7 — scalability of the ad-hoc ("virtual ETL") pipeline: wall time of
//! each stage as the input grows, with and without blocking.

use hummer_bench::{f3, ms, render_table};
use hummer_core::{Hummer, HummerConfig, MatcherConfig, SniffConfig};
use hummer_datagen::{cluster_pair_metrics, generate, DirtyConfig, EntityKind, SourceSpec};
use hummer_dupdetect::CandidateSpec;

fn main() {
    println!("E7 — pipeline scalability (two heterogeneous person sources)\n");
    let mut rows = Vec::new();
    for n in [100usize, 500, 1000, 2000, 5000] {
        let w = generate(&DirtyConfig {
            kind: EntityKind::Person,
            entities: n,
            sources: vec![
                SourceSpec::plain("A"),
                SourceSpec::plain("B")
                    .rename("Name", "FullName")
                    .rename("City", "Town")
                    .shuffled(),
            ],
            coverage: 0.7,
            typo_rate: 0.08,
            null_rate: 0.05,
            conflict_rate: 0.1,
            dup_within_source: 0.0,
            seed: n as u64,
        });

        for (label, blocking) in [("all-pairs", false), ("blocking", true)] {
            let mut config = HummerConfig {
                matcher: MatcherConfig {
                    sniff: SniffConfig {
                        top_k: 10,
                        min_similarity: 0.3,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            };
            if blocking {
                config.detector.candidates = CandidateSpec::SortedNeighborhood {
                    key: vec!["Name".into()],
                    window: 15,
                };
            }
            let mut h = Hummer::with_config(config);
            for s in &w.sources {
                h.repository_mut()
                    .register_table(s.table.name().to_string(), s.table.clone())
                    .unwrap();
            }
            let out = h.fuse_sources(&["A", "B"], &[]).unwrap();
            let pr = cluster_pair_metrics(&out.detection.cluster_ids, &w.gold_union_entity_ids());
            rows.push(vec![
                out.integrated.len().to_string(),
                label.to_string(),
                ms(out.timings.matching),
                ms(out.timings.transformation),
                ms(out.timings.detection),
                ms(out.timings.fusion),
                ms(out.timings.total()),
                f3(pr.f1()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "rows",
                "strategy",
                "match_ms",
                "xform_ms",
                "detect_ms",
                "fuse_ms",
                "total_ms",
                "dupF1"
            ],
            &rows
        )
    );
}
