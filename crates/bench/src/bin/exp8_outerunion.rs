//! E8 — `FUSE FROM` semantics (§2.1/§2.2): outer union vs. join vs. cross
//! product cardinalities and schema widths, and preferred-schema renaming
//! across 2–5 sources.

use hummer_bench::{f3, render_table};
use hummer_datagen::{correspondence_metrics, generate, DirtyConfig, EntityKind, SourceSpec};
use hummer_engine::ops::{cross_product, hash_join, outer_union, JoinKind};
use hummer_engine::Table;
use hummer_matching::{integrate, match_star, MatcherConfig, SniffConfig};

fn main() {
    // (a) combination-operator comparison on two 200-row sources.
    let w = generate(&DirtyConfig {
        coverage: 0.7,
        ..DirtyConfig::two_sources(EntityKind::Cd, 200, 8)
    });
    let a = &w.sources[0].table;
    let b = &w.sources[1].table;

    println!(
        "E8a — combining two sources ({} and {} rows)\n",
        a.len(),
        b.len()
    );
    let union = outer_union(&[a, b], "U").unwrap();
    let join = hash_join(a, b, "Title", "Title", JoinKind::Inner).unwrap();
    let cross = cross_product(a, b).unwrap();
    let rows = vec![
        vec![
            "full outer union (FUSE FROM)".to_string(),
            union.len().to_string(),
            union.schema().len().to_string(),
        ],
        vec![
            "inner equi-join on Title".to_string(),
            join.len().to_string(),
            join.schema().len().to_string(),
        ],
        vec![
            "cross product (plain FROM)".to_string(),
            cross.len().to_string(),
            cross.schema().len().to_string(),
        ],
    ];
    println!("{}", render_table(&["operator", "rows", "columns"], &rows));

    // (b) preferred-schema renaming across k = 2..5 sources.
    println!("\nE8b — star alignment to the preferred schema, k sources\n");
    let mut rows = Vec::new();
    for k in 2usize..=5 {
        let mut sources = vec![SourceSpec::plain("S0")];
        for i in 1..k {
            sources.push(
                SourceSpec::plain(format!("S{i}"))
                    .rename("Name", format!("Person{i}"))
                    .rename("City", format!("Town{i}"))
                    .shuffled(),
            );
        }
        let w = generate(&DirtyConfig {
            kind: EntityKind::Person,
            entities: 300,
            sources,
            coverage: 0.6,
            typo_rate: 0.08,
            null_rate: 0.05,
            conflict_rate: 0.1,
            dup_within_source: 0.0,
            seed: k as u64,
        });
        let refs: Vec<&Table> = w.sources.iter().map(|s| &s.table).collect();
        let cfg = MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        };
        let matches = match_star(&refs, &cfg);
        let integrated = integrate(&refs, &matches, "I").unwrap();
        // Rename quality averaged over non-preferred sources.
        let mut f1_sum = 0.0;
        for (i, m) in matches.iter().enumerate() {
            let predicted: Vec<(String, String)> = m
                .correspondences
                .iter()
                .filter(|c| !c.right_column.eq_ignore_ascii_case(&c.left_column))
                .map(|c| (c.right_column.clone(), c.left_column.clone()))
                .collect();
            let gold: Vec<(String, String)> = w.gold_renames[i + 1]
                .iter()
                .filter(|(l, c)| !l.eq_ignore_ascii_case(c))
                .map(|(l, c)| (l.clone(), c.clone()))
                .collect();
            f1_sum += correspondence_metrics(&predicted, &gold).f1();
        }
        let total_rows: usize = refs.iter().map(|t| t.len()).sum();
        rows.push(vec![
            k.to_string(),
            total_rows.to_string(),
            integrated.len().to_string(),
            integrated.schema().len().to_string(),
            f3(f1_sum / matches.len() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["sources", "Σ rows", "union rows", "union cols", "rename F1"],
            &rows
        )
    );
}
