//! E9 — the serving path: an in-process `hummer_server` under load.
//!
//! Measures, per demo scenario world, the cold (cache-miss: full
//! match+detect pipeline) vs. warm (prepared-pipeline cache hit) latency of
//! the same `FUSE BY` query, then fans concurrent connections over all
//! worlds for throughput. Writes the numbers as `BENCH_serving.json` next
//! to the working directory and prints the tables.
//!
//! The acceptance bar for the prepared-pipeline cache is a ≥ 5× cold/warm
//! speedup on repeat queries over unchanged sources; the run fails loudly
//! if the speedup falls below that.

use hummer_bench::{f3, render_table};
use hummer_server::loadgen::{
    http_request, percentile_ms, run_load, scenario_worlds, upload_world, LoadConfig,
};
use hummer_server::{HummerServer, Json, ServerConfig, ServiceConfig};
use std::process::ExitCode;
use std::time::Instant;

const SCENARIO_NAMES: [&str; 4] = [
    "cd_shopping",
    "disaster_registry",
    "student_rosters",
    "cleansing_service",
];
const WARM_REPEATS: usize = 12;

fn timed_query(addr: &str, sql: &str) -> (f64, u16) {
    let t0 = Instant::now();
    let (status, _) = http_request(addr, "POST", "/query", "text/plain", sql.as_bytes())
        .unwrap_or((0, String::new()));
    (t0.elapsed().as_secs_f64() * 1e3, status)
}

fn main() -> ExitCode {
    println!("E9 — fusion query serving: prepared-pipeline cache cold vs. warm, then load\n");

    let server = HummerServer::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        service: ServiceConfig::narrow_schema(),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // One world per demo scenario; upload tables, keep the FUSE query each.
    // World size is chosen so preparation (match + detect) dominates cold
    // latency the way real workloads do.
    let worlds = scenario_worlds(4, 150, 2005);
    let mut sql_pool = Vec::new();
    for (i, world) in worlds.iter().enumerate() {
        sql_pool.push(upload_world(&addr, &format!("w{i}"), world).expect("upload world"));
    }

    // Cold vs. warm, per world.
    let mut rows = Vec::new();
    let mut world_reports = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    for (name, sql) in SCENARIO_NAMES.iter().zip(&sql_pool) {
        let (cold_ms, status) = timed_query(&addr, sql);
        assert_eq!(status, 200, "cold query against {name} failed");
        let warm: Vec<f64> = (0..WARM_REPEATS)
            .map(|_| {
                let (ms, status) = timed_query(&addr, sql);
                assert_eq!(status, 200, "warm query against {name} failed");
                ms
            })
            .collect();
        let warm_p50 = percentile_ms(&warm, 50.0);
        let speedup = cold_ms / warm_p50.max(1e-9);
        worst_speedup = worst_speedup.min(speedup);
        rows.push(vec![
            name.to_string(),
            format!("{cold_ms:.2}"),
            format!("{warm_p50:.2}"),
            format!("{speedup:.1}x"),
        ]);
        world_reports.push(
            Json::object()
                .with("scenario", *name)
                .with("cold_ms", cold_ms)
                .with("warm_p50_ms", warm_p50)
                .with("speedup", speedup),
        );
    }
    println!(
        "{}",
        render_table(&["scenario", "cold_ms", "warm_p50_ms", "speedup"], &rows)
    );

    // Concurrent load over all (now warm) worlds.
    let load = run_load(&LoadConfig::read_only(
        addr.clone(),
        8,
        200,
        sql_pool.clone(),
    ));
    println!(
        "{}",
        render_table(
            &[
                "connections",
                "requests",
                "ok",
                "err",
                "rps",
                "p50_ms",
                "p99_ms"
            ],
            &[vec![
                "8".into(),
                "200".into(),
                load.ok.to_string(),
                load.errors.to_string(),
                format!("{:.1}", load.throughput_rps),
                format!("{:.2}", load.p50_ms),
                format!("{:.2}", load.p99_ms),
            ]],
        )
    );

    // Cache hit rate from the server's own metrics endpoint.
    let (_, metrics_body) =
        http_request(&addr, "GET", "/metrics.json", "text/plain", b"").expect("metrics");
    let metrics = Json::parse(&metrics_body).expect("metrics JSON");
    let cache = metrics.get("prepared_cache").expect("cache stats").clone();
    println!("cache: {}", cache.to_string_compact());
    println!("worst cold/warm speedup: {}x\n", f3(worst_speedup));

    handle.shutdown();
    server_thread.join().expect("server thread");

    let report = Json::object()
        .with("experiment", "exp9_serving")
        .with("worlds", Json::Arr(world_reports))
        .with(
            "load",
            Json::object()
                .with("connections", 8usize)
                .with("requests", 200usize)
                .with("ok", load.ok)
                .with("errors", load.errors)
                .with("throughput_rps", load.throughput_rps)
                .with("p50_ms", load.p50_ms)
                .with("p99_ms", load.p99_ms),
        )
        .with("cache", cache)
        .with("worst_speedup", worst_speedup);
    let path = "BENCH_serving.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_serving.json");
    println!("wrote {path}");

    if worst_speedup < 5.0 {
        eprintln!("FAIL: prepared-pipeline cache speedup {worst_speedup:.1}x is below the 5x bar");
        return ExitCode::FAILURE;
    }
    println!("PASS: repeat queries ≥ 5x faster than cold on every scenario");
    ExitCode::SUCCESS
}
