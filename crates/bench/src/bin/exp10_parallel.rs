//! E10 — intra-query parallelism: 1/2/4/8-thread speedup curves for the
//! end-to-end pipeline (match → transform → detect → fuse) on the datagen
//! scenario worlds, plus a byte-identity check between the sequential and
//! every parallel run.
//!
//! Two properties are measured:
//!
//! 1. **Determinism** (hard requirement, any hardware): for every world and
//!    degree, the parallel pipeline's output — fused table, cluster ids,
//!    conflict samples, match correspondences — must be bit-identical to
//!    the sequential run. A mismatch aborts the experiment.
//! 2. **Speedup** (hardware permitting): on the large world the 4-thread
//!    run must be ≥ 2× faster than 1-thread. This gate only applies when
//!    the host actually has ≥ 4 cores ([`std::thread::available_parallelism`]);
//!    on smaller hosts the curve is still recorded (expect ≈ 1×) and the
//!    gate is reported as skipped in `BENCH_parallel.json`.

use hummer_bench::{f3, render_table};
use hummer_core::{
    fuse_prepared_par, prepare_tables, HummerConfig, MatcherConfig, Parallelism, PipelineOutcome,
    SniffConfig,
};
use hummer_datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer_datagen::GeneratedWorld;
use hummer_fusion::FunctionRegistry;
use hummer_server::Json;
use std::process::ExitCode;
use std::time::Instant;

const DEGREES: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 2005;
/// Entities per curve world (the four demo scenarios).
const CURVE_ENTITIES: usize = 150;
/// Entities in the large world the speedup gate runs on. At this size the
/// parallelizable work (pair scoring, matrices, cluster resolution) is
/// ~85 % of end-to-end wall clock, so 4 threads have an Amdahl ceiling of
/// ~2.7× — comfortably above the 2× bar on a ≥ 4-core host.
const LARGE_ENTITIES: usize = 600;
/// Required end-to-end speedup at 4 threads on the large world.
const SPEEDUP_BAR: f64 = 2.0;

fn config(par: Parallelism) -> HummerConfig {
    HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        ..Default::default()
    }
}

/// Run the full pipeline over a world at the given degree; returns the
/// outcome, the union row count, and the wall-clock milliseconds.
fn run_world(world: &GeneratedWorld, par: Parallelism) -> (PipelineOutcome, usize, f64) {
    let tables: Vec<&hummer_core::engine::Table> = world.sources.iter().map(|s| &s.table).collect();
    let cfg = config(par);
    let registry = FunctionRegistry::standard();
    let t0 = Instant::now();
    let prepared = prepare_tables(&tables, &cfg).expect("prepare");
    let out = fuse_prepared_par(&prepared, &[], &registry, par).expect("fuse");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let rows = prepared.integrated.len();
    (out, rows, ms)
}

/// A bit-exact rendering of everything the pipeline produced. Two runs are
/// "the same" iff their fingerprints are string-equal: `{:?}` on `f64`
/// prints the shortest roundtrip representation, so different bits render
/// differently.
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{:?}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.conflict_count,
        out.sample_conflicts,
        out.match_results
            .iter()
            .map(|m| &m.correspondences)
            .collect::<Vec<_>>(),
    )
}

fn main() -> ExitCode {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("E10 — intra-query parallelism ({host_cores} cores available)\n");

    let worlds: Vec<(&str, GeneratedWorld)> = vec![
        ("cd_shopping", cd_shopping(CURVE_ENTITIES, SEED)),
        ("disaster_registry", disaster_registry(CURVE_ENTITIES, SEED)),
        ("student_rosters", student_rosters(CURVE_ENTITIES, SEED)),
        ("cleansing_service", cleansing_service(CURVE_ENTITIES, SEED)),
        ("cd_shopping_large", cd_shopping(LARGE_ENTITIES, SEED)),
    ];

    let mut table_rows = Vec::new();
    let mut world_reports = Vec::new();
    let mut large_speedup_at_4 = 0.0_f64;
    for (name, world) in &worlds {
        let mut base_fp = String::new();
        let mut base_ms = 0.0;
        let mut union_rows = 0;
        let mut degree_reports = Vec::new();
        let mut row = vec![name.to_string()];
        for &d in &DEGREES {
            let (out, rows, ms) = run_world(world, Parallelism::degree(d));
            let fp = fingerprint(&out);
            if d == 1 {
                base_fp = fp.clone();
                base_ms = ms;
                union_rows = rows;
            } else if fp != base_fp {
                eprintln!("FAIL: {name} at {d} threads diverged from the sequential run");
                return ExitCode::FAILURE;
            }
            let speedup = base_ms / ms.max(1e-9);
            if *name == "cd_shopping_large" && d == 4 {
                large_speedup_at_4 = speedup;
            }
            row.push(format!("{ms:.0} ({speedup:.2}x)"));
            degree_reports.push(
                Json::object()
                    .with("threads", d)
                    .with("total_ms", ms)
                    .with("speedup", speedup),
            );
        }
        row.insert(1, union_rows.to_string());
        table_rows.push(row);
        world_reports.push(
            Json::object()
                .with("scenario", *name)
                .with("union_rows", union_rows)
                .with("identical_to_sequential", true)
                .with("degrees", Json::Arr(degree_reports)),
        );
    }

    println!(
        "{}",
        render_table(
            &[
                "world",
                "rows",
                "1 thr ms",
                "2 thr ms (x)",
                "4 thr ms (x)",
                "8 thr ms (x)"
            ],
            &table_rows
        )
    );
    println!("parallel output identical to sequential on every world and degree\n");

    let gate_applies = host_cores >= 4;
    let gate_passed = large_speedup_at_4 >= SPEEDUP_BAR;
    let report = Json::object()
        .with("experiment", "exp10_parallel")
        .with("host_parallelism", host_cores)
        .with("identical_to_sequential", true)
        .with("worlds", Json::Arr(world_reports))
        .with(
            "speedup_gate",
            Json::object()
                .with("world", "cd_shopping_large")
                .with("threads", 4usize)
                .with("required_speedup", SPEEDUP_BAR)
                .with("measured_speedup", large_speedup_at_4)
                .with("applies", gate_applies)
                .with("passed", gate_applies && gate_passed),
        );
    let path = "BENCH_parallel.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_parallel.json");
    println!("wrote {path}");

    if gate_applies {
        if !gate_passed {
            eprintln!(
                "FAIL: large-world speedup at 4 threads is {}x, below the {SPEEDUP_BAR}x bar",
                f3(large_speedup_at_4)
            );
            return ExitCode::FAILURE;
        }
        println!(
            "PASS: large-world speedup at 4 threads = {}x (>= {SPEEDUP_BAR}x)",
            f3(large_speedup_at_4)
        );
    } else {
        println!(
            "NOTE: host has {host_cores} core(s); the >= {SPEEDUP_BAR}x speedup gate needs >= 4 \
             cores and was skipped (identity checks still enforced)"
        );
    }
    ExitCode::SUCCESS
}
