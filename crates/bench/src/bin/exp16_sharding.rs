//! E16 — sharded scatter-gather fusion (PR 9).
//!
//! Three gates on the two-tier worker/combiner executor in `crates/shard`:
//!
//! 1. **Identity matrix** (hard gate): for every demo scenario world, the
//!    sharded pipeline's output is bit-identical to the single-shard
//!    pipeline across shard ceilings K ∈ {1, 2, 4, 8} × intra-shard
//!    parallelism degrees 1–4.
//! 2. **Scatter-gather speedup** on the ≈ 10k-row `person_scale` world
//!    under key-equality blocking (24 city keys → ≈ 1.4M candidate
//!    pairs), 8 shards scattered over two HTTP workers:
//!    - *work division* (hard gate, any host): the planner's round-robin
//!      batches must split the candidate-pair work so the critical path —
//!      the heaviest worker's share — is at most `1/1.5` of the total,
//!      i.e. two workers buy ≥ 1.5× on the shardable stage;
//!    - *wall clock* (hard gate on hosts with ≥ 4 cores, reported
//!      otherwise — the same rule as exp10's parallelism gate): the
//!      two-worker scatter must beat the sequential single-shard pipeline
//!      end to end, global matching, wire encoding, and combiner included.
//! 3. **Worker-kill fault drill** (hard gate): with one worker dead the
//!    coordinator retries its batches on the surviving worker; with both
//!    dead it falls back to local execution. Both answers must stay
//!    bit-identical to the reference, and with fallback disabled the
//!    all-dead scatter must surface an error instead of wrong output.
//!
//! Writes `BENCH_sharding.json` and exits nonzero if any gate fails.

use hummer_bench::{f3, render_table};
use hummer_core::{fuse_prepared_par, prepare_tables, HummerConfig, Parallelism, PipelineOutcome};
use hummer_datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, person_scale, student_rosters,
};
use hummer_datagen::GeneratedWorld;
use hummer_dupdetect::{candidate_pairs, resolve_candidate_strategy};
use hummer_engine::Table;
use hummer_fusion::FunctionRegistry;
use hummer_obs::Span;
use hummer_server::{HummerServer, Json, ServerConfig, ServiceConfig};
use hummer_shard::{
    execute_sharded, execute_sharded_with, key_equality_spec, plan_shards, CoordinatorConfig,
    RemoteBackend,
};
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 2005;
/// Entities per demo scenario world in the identity matrix.
const CURVE_ENTITIES: usize = 120;
/// `person_scale` entities; coverage 0.7 makes the union ≈ 10k rows.
const LARGE_ENTITIES: usize = 7200;
/// Shard ceilings of the identity matrix.
const SHARD_CEILINGS: [usize; 4] = [1, 2, 4, 8];
/// Intra-shard parallelism degrees of the identity matrix.
const DEGREES: [usize; 4] = [1, 2, 3, 4];
/// Shard ceiling for the large-world scatter.
const K_BIG: usize = 8;
/// Minimum end-to-end wall-clock speedup of the two-worker scatter over
/// the sequential single-shard pipeline, enforced on hosts with at least
/// [`MIN_CORES_FOR_WALL_GATE`] cores. Matching and transformation stay
/// global (they are not sharded — see the shard crate docs), so the
/// scatter can only win back the detect/cluster/fuse fraction; 1.1× on
/// the full pipeline is the honest floor for two workers.
const SPEEDUP_BAR: f64 = 1.1;
/// The wall-clock gate needs real cores: a coordinator plus two workers
/// time-slicing one CPU can only lose to a sequential run. Same rule as
/// exp10's intra-query parallelism gate.
const MIN_CORES_FOR_WALL_GATE: usize = 4;
/// Minimum work-division speedup: total candidate pairs over the heaviest
/// worker batch's pairs. This is the scatter's critical-path win and is
/// host-independent; 2 ideally balanced workers give 2.0.
const DIVISION_BAR: f64 = 1.5;
const REPS: usize = 3;

/// Minimum wall-clock milliseconds of `f` over [`REPS`] runs.
fn time_min_ms<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("REPS >= 1"), best)
}

/// Everything user-visible, rendered bit-exactly (`{:?}` on `f64` is the
/// shortest roundtrip form, so differing bits — NaN payloads, `-0.0` —
/// render differently).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.detection.pairs,
        out.detection.unsure,
        out.conflict_count,
        out.sample_conflicts,
    )
}

/// Key-equality blocking on `key` so the candidate graph decomposes into
/// one component per key group and K > 1 genuinely fans out.
fn sharded_config(key: &str, par: Parallelism) -> HummerConfig {
    let mut config = HummerConfig {
        parallelism: par,
        ..Default::default()
    };
    config.detector.candidates = key_equality_spec(key.to_string());
    config
}

/// The single-shard reference: prepare + fuse, sequential.
fn reference_outcome(tables: &[&Table], config: &HummerConfig) -> PipelineOutcome {
    let prepared = prepare_tables(tables, config).expect("prepare");
    fuse_prepared_par(
        &prepared,
        &[],
        &FunctionRegistry::standard(),
        Parallelism::sequential(),
    )
    .expect("fuse")
}

/// Start one shard worker: a plain `hummer-serve` (event mode) on an
/// ephemeral port — `POST /shard/execute` is all the coordinator uses, and
/// the request carries its own table, so no uploads are needed.
fn start_worker(degree: usize) -> (String, impl FnOnce()) {
    let mut service = ServiceConfig::default();
    service.pipeline.parallelism = Parallelism::degree(degree);
    let server = HummerServer::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        service,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral worker port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, move || {
        handle.shutdown();
        join.join().expect("worker thread");
    })
}

fn remote_backend(workers: Vec<String>, fallback_local: bool) -> RemoteBackend {
    RemoteBackend::new(CoordinatorConfig {
        workers,
        fallback_local,
        ..CoordinatorConfig::default()
    })
}

fn main() -> ExitCode {
    println!("E16 — sharded scatter-gather fusion\n");
    let registry = FunctionRegistry::standard();

    // ---- 1. Identity matrix: worlds × shard ceilings × degrees ----------
    let worlds: Vec<(&str, GeneratedWorld)> = vec![
        ("cd_shopping", cd_shopping(CURVE_ENTITIES, SEED)),
        ("disaster_registry", disaster_registry(CURVE_ENTITIES, SEED)),
        ("student_rosters", student_rosters(CURVE_ENTITIES, SEED)),
        ("cleansing_service", cleansing_service(CURVE_ENTITIES, SEED)),
    ];
    let mut identity_reports = Vec::new();
    for (name, world) in &worlds {
        let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let key = world.sources[0].table.schema().names()[0].to_string();
        let base = fingerprint(&reference_outcome(
            &tables,
            &sharded_config(&key, Parallelism::sequential()),
        ));
        let mut checked = 0usize;
        let mut max_shards = 0usize;
        for &k in &SHARD_CEILINGS {
            for &d in &DEGREES {
                let config = sharded_config(&key, Parallelism::degree(d));
                let sharded =
                    execute_sharded(&tables, &config, k, &[], &registry).expect("sharded");
                if fingerprint(&sharded.outcome) != base {
                    eprintln!("FAIL: {name} diverged at k={k}, {d} thread(s)");
                    return ExitCode::FAILURE;
                }
                max_shards = max_shards.max(sharded.shards);
                checked += 1;
            }
        }
        println!("{name}: {checked} shard x degree runs bit-identical (up to {max_shards} shards)");
        identity_reports.push(
            Json::object()
                .with("scenario", *name)
                .with("runs", checked)
                .with("max_shards", max_shards)
                .with("identical", true),
        );
    }
    println!();

    // ---- 2. Large world: scatter-gather speedup over two workers --------
    // Key-equality on `City` (24 distinct cities in the generator pool)
    // gives a few dozen fat candidate-graph components — real per-shard
    // scoring work that the planner can actually spread.
    let large = person_scale(LARGE_ENTITIES, SEED);
    let tables: Vec<&Table> = large.sources.iter().map(|s| &s.table).collect();
    let seq_cfg = sharded_config("City", Parallelism::sequential());
    let par_cfg = sharded_config("City", Parallelism::degree(4));

    let (reference, single_ms) = time_min_ms(|| reference_outcome(&tables, &seq_cfg));
    let reference_fp = fingerprint(&reference);
    let prepared = prepare_tables(&tables, &seq_cfg).expect("prepare large");
    let strategy =
        resolve_candidate_strategy(&prepared.integrated, &seq_cfg.detector_config().candidates)
            .expect("strategy");
    let n_candidates = candidate_pairs(&prepared.integrated, &strategy).len();
    println!(
        "large world: {} union rows, {} candidate pairs under City blocking; \
         single-shard sequential pipeline {:.0} ms",
        prepared.integrated.len(),
        n_candidates,
        single_ms
    );

    // Work-division gate: the coordinator hands worker i shards i, i+2,
    // i+4, … (round-robin, see `RemoteBackend::scatter`); the heaviest
    // batch's candidate-pair share is the scatter's critical path.
    let plan = plan_shards(&prepared.integrated, &seq_cfg.detector_config(), K_BIG).expect("plan");
    let n_groups = 2usize.min(plan.shards.len().max(1));
    let mut group_pairs = vec![0usize; n_groups];
    for (i, shard) in plan.shards.iter().enumerate() {
        group_pairs[i % n_groups] += shard.candidates.len();
    }
    let max_group = group_pairs.iter().copied().max().unwrap_or(0);
    let division = n_candidates as f64 / (max_group.max(1)) as f64;
    let division_passed = division >= DIVISION_BAR;
    println!(
        "work division over 2 workers: heaviest batch {} of {} pairs -> {}x critical-path win",
        max_group,
        n_candidates,
        f3(division)
    );
    if !division_passed {
        eprintln!(
            "FAIL: work division is {}x, below the {DIVISION_BAR}x bar",
            f3(division)
        );
        return ExitCode::FAILURE;
    }

    // Local sharded run: same decomposition, no network — isolates the
    // planner/combiner overhead from the scatter win.
    let (local_sharded, local_ms) = time_min_ms(|| {
        execute_sharded(&tables, &par_cfg, K_BIG, &[], &registry).expect("local sharded")
    });
    if fingerprint(&local_sharded.outcome) != reference_fp {
        eprintln!("FAIL: local sharded output diverged on the large world");
        return ExitCode::FAILURE;
    }

    // Remote scatter: two worker servers, round-robin shard batches.
    let (addr_a, stop_a) = start_worker(2);
    let (addr_b, stop_b) = start_worker(2);
    let backend = remote_backend(vec![addr_a.clone(), addr_b.clone()], true);
    let (remote, remote_ms) = time_min_ms(|| {
        execute_sharded_with(
            &tables,
            &par_cfg,
            K_BIG,
            &[],
            &registry,
            &backend,
            &Span::noop(),
        )
        .expect("remote sharded")
    });
    let remote_identical = fingerprint(&remote.outcome) == reference_fp;
    let clean_scatter = remote.stats.fallbacks == 0 && remote.stats.retries == 0;
    if !remote_identical {
        eprintln!("FAIL: remote scatter output diverged on the large world");
        return ExitCode::FAILURE;
    }
    if !clean_scatter {
        eprintln!(
            "FAIL: healthy two-worker scatter needed {} retries / {} fallbacks",
            remote.stats.retries, remote.stats.fallbacks
        );
        return ExitCode::FAILURE;
    }
    let speedup = single_ms / remote_ms.max(1e-9);
    println!(
        "{}",
        render_table(
            &["pipeline", "ms", "vs single"],
            &[
                vec![
                    "single shard, sequential".into(),
                    format!("{single_ms:.0}"),
                    "1.000x".into()
                ],
                vec![
                    format!("{} shards, local", local_sharded.shards),
                    format!("{local_ms:.0}"),
                    format!("{}x", f3(single_ms / local_ms.max(1e-9))),
                ],
                vec![
                    format!("{} shards, 2 workers", remote.shards),
                    format!("{remote_ms:.0}"),
                    format!("{}x", f3(speedup)),
                ],
            ],
        )
    );
    println!(
        "scatter: {} shards from {} components, {} worker requests\n",
        remote.shards, remote.components, remote.stats.requests
    );

    // ---- 3. Fault drill: dead worker, dead fleet, no fallback -----------
    // Kill worker B. Its batches must retry onto A and the answer must not
    // change by a bit.
    stop_b();
    let one_dead = remote_backend(vec![addr_a.clone(), addr_b.clone()], true);
    let drilled = execute_sharded_with(
        &tables,
        &par_cfg,
        K_BIG,
        &[],
        &registry,
        &one_dead,
        &Span::noop(),
    )
    .expect("scatter with one dead worker");
    let retry_identical = fingerprint(&drilled.outcome) == reference_fp;
    let retried = drilled.stats.retries;
    println!(
        "worker-kill drill: 1 of 2 workers dead -> {} retries, {} fallbacks, identical={}",
        retried, drilled.stats.fallbacks, retry_identical
    );
    if !retry_identical || retried == 0 {
        eprintln!("FAIL: dead-worker retry path broke identity or never retried");
        stop_a();
        return ExitCode::FAILURE;
    }

    // Kill worker A too. Every batch now falls back to local execution.
    stop_a();
    let all_dead = remote_backend(vec![addr_a.clone(), addr_b.clone()], true);
    let fell_back = execute_sharded_with(
        &tables,
        &par_cfg,
        K_BIG,
        &[],
        &registry,
        &all_dead,
        &Span::noop(),
    )
    .expect("scatter with all workers dead");
    let fallback_identical = fingerprint(&fell_back.outcome) == reference_fp;
    let fallbacks = fell_back.stats.fallbacks;
    println!(
        "worker-kill drill: all workers dead -> {} fallbacks, identical={}",
        fallbacks, fallback_identical
    );
    if !fallback_identical || fallbacks == 0 {
        eprintln!("FAIL: local-fallback path broke identity or never engaged");
        return ExitCode::FAILURE;
    }

    // With fallback disabled, the same all-dead scatter must error — never
    // return partial or wrong output.
    let strict = remote_backend(vec![addr_a, addr_b], false);
    let strict_err = execute_sharded_with(
        &tables,
        &par_cfg,
        K_BIG,
        &[],
        &registry,
        &strict,
        &Span::noop(),
    )
    .is_err();
    println!("worker-kill drill: all dead + --no-fallback -> error surfaced: {strict_err}\n");
    if !strict_err {
        eprintln!("FAIL: all-dead scatter with fallback disabled did not error");
        return ExitCode::FAILURE;
    }

    // ---- Report ---------------------------------------------------------
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let wall_gate_applies = host_cores >= MIN_CORES_FOR_WALL_GATE;
    let wall_passed = !wall_gate_applies || speedup >= SPEEDUP_BAR;
    let report = Json::object()
        .with("experiment", "exp16_sharding")
        .with("identity", Json::Arr(identity_reports))
        .with(
            "large_world",
            Json::object()
                .with("entities", LARGE_ENTITIES)
                .with("union_rows", prepared.integrated.len())
                .with("blocking_key", "City")
                .with("candidate_pairs", n_candidates)
                .with("components", remote.components)
                .with("shards", remote.shards),
        )
        .with(
            "work_division_gate",
            Json::object()
                .with("workers", 2usize)
                .with("total_pairs", n_candidates)
                .with("heaviest_batch_pairs", max_group)
                .with("required_speedup", DIVISION_BAR)
                .with("measured_speedup", division)
                .with("passed", division_passed),
        )
        .with(
            "wall_clock_gate",
            Json::object()
                .with("workers", 2usize)
                .with("host_cores", host_cores)
                .with("applies", wall_gate_applies)
                .with("single_shard_ms", single_ms)
                .with("local_sharded_ms", local_ms)
                .with("remote_scatter_ms", remote_ms)
                .with("worker_requests", remote.stats.requests)
                .with("required_speedup", SPEEDUP_BAR)
                .with("measured_speedup", speedup)
                .with("passed", wall_passed),
        )
        .with(
            "fault_drill",
            Json::object()
                .with("one_dead_retries", retried)
                .with("one_dead_identical", retry_identical)
                .with("all_dead_fallbacks", fallbacks)
                .with("all_dead_identical", fallback_identical)
                .with("no_fallback_errors", strict_err),
        );
    let path = "BENCH_sharding.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_sharding.json");
    println!("wrote {path}");

    if !wall_passed {
        eprintln!(
            "FAIL: two-worker scatter wall-clock speedup is {}x, below the {SPEEDUP_BAR}x bar",
            f3(speedup)
        );
        return ExitCode::FAILURE;
    }
    if !wall_gate_applies {
        println!(
            "NOTE: host has {host_cores} core(s); the >= {SPEEDUP_BAR}x wall-clock gate needs \
             >= {MIN_CORES_FOR_WALL_GATE} cores and was skipped (wall clock measured {}x; \
             identity, work-division, and fault-drill gates still enforced)",
            f3(speedup)
        );
    }
    println!(
        "PASS: work division = {}x (>= {DIVISION_BAR}x), every sharded output bit-identical, \
         fault drill green",
        f3(division)
    );
    ExitCode::SUCCESS
}
