//! E17 — distributed tracing across the shard boundary (PR 10).
//!
//! Three gates on the cross-node tracing added in ISSUE 10 — the
//! coordinator ships `(trace_id, parent_span_id)` inside the `HmSh` v2
//! frame, workers record their stage spans under a private capture tracer
//! and return the subtree in the response, and the coordinator splices it
//! into its own ring tagged with a `node` label:
//!
//! 1. **Stitched tree** (hard gate): a cold coordinator query scattered
//!    over two freshly-started HTTP workers must produce ONE trace tree —
//!    single root, zero orphans — that contains the coordinator's own
//!    stage spans (`plan`, `scatter`, `combine`, node-less) *and* every
//!    worker stage span (`worker_batch` → `shard` → `score`/`cluster`),
//!    with `node` labels naming at least two distinct workers. The fused
//!    output must stay bit-identical to the single-shard reference.
//! 2. **Fault drill as spans** (hard gate): with one worker dead the
//!    retry decision must appear as a `retry` span in the same trace;
//!    with the whole fleet dead the local `fallback` span must. Both
//!    answers stay bit-identical.
//! 3. **Overhead** (hard gate): the instrumented two-worker scatter —
//!    coordinator tracer live, worker subtrees captured, shipped, and
//!    spliced — must finish within [`OVERHEAD_BAR_PCT`] of the bare
//!    scatter (no-op span, no capture), aggregated over parallelism
//!    degrees 1–4 on the ≈ 10k-row `person_scale` world. Bare and
//!    instrumented reps are interleaved; minima are compared. Every
//!    degree's instrumented output must be bit-identical to the bare one
//!    (tracing on/off must not perturb fusion).
//!
//! Writes `BENCH_disttrace.json` and exits nonzero if any gate fails.

use hummer_bench::{f3, render_table};
use hummer_core::{fuse_prepared_par, prepare_tables, HummerConfig, Parallelism, PipelineOutcome};
use hummer_datagen::scenarios::person_scale;
use hummer_engine::Table;
use hummer_fusion::FunctionRegistry;
use hummer_obs::{Span, SpanRecord, TraceNode, Tracer};
use hummer_server::{HummerServer, Json, ServerConfig, ServiceConfig};
use hummer_shard::{
    execute_sharded_with, key_equality_spec, CoordinatorConfig, RemoteBackend, ShardedOutcome,
};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 2005;
/// `person_scale` entities; coverage 0.7 makes the union ≈ 10k rows.
const LARGE_ENTITIES: usize = 7200;
/// Shard ceiling: 8 shards round-robined over 2 workers.
const K_BIG: usize = 8;
/// Maximum tolerated instrumented-over-bare overhead, in percent —
/// the same bar exp14 holds for single-node tracing, now including wire
/// capture, span shipping, and coordinator-side splicing.
const OVERHEAD_BAR_PCT: f64 = 3.0;
/// Timing repetitions per degree cell; minima are compared.
const REPS: usize = 3;
/// Coordinator ring capacity (the `hummer-serve` default).
const RING: usize = 65536;
/// Worker stage spans the stitched tree must contain, all node-labeled.
const WORKER_STAGES: [&str; 4] = ["worker_batch", "shard", "score", "cluster"];
/// Coordinator stage spans the stitched tree must contain, all local.
const COORD_STAGES: [&str; 3] = ["plan", "scatter", "combine"];

/// Key-equality blocking on `City` (24 keys in the generator pool) so the
/// candidate graph decomposes into fat components the planner can spread.
fn sharded_config(par: Parallelism) -> HummerConfig {
    let mut config = HummerConfig {
        parallelism: par,
        ..Default::default()
    };
    config.detector.candidates = key_equality_spec("City".to_string());
    config
}

/// Everything user-visible, rendered bit-exactly (`{:?}` on `f64` is the
/// shortest roundtrip form, so differing bits — NaN payloads, `-0.0` —
/// render differently).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.detection.pairs,
        out.detection.unsure,
        out.conflict_count,
        out.sample_conflicts,
    )
}

/// Start one shard worker: a plain `hummer-serve` on an ephemeral port.
/// The worker's own tracer stays disabled — the spans it ships back come
/// from the per-request capture tracer in `handle_shard_request`, which is
/// exactly what a mixed fleet would exercise.
fn start_worker(degree: usize) -> (String, impl FnOnce()) {
    let mut service = ServiceConfig::default();
    service.pipeline.parallelism = Parallelism::degree(degree);
    let server = HummerServer::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        service,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral worker port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, move || {
        handle.shutdown();
        join.join().expect("worker thread");
    })
}

fn remote_backend(workers: Vec<String>) -> RemoteBackend {
    RemoteBackend::new(CoordinatorConfig {
        workers,
        fallback_local: true,
        ..CoordinatorConfig::default()
    })
}

/// Flatten a trace tree into its span records, depth-first.
fn flatten<'a>(node: &'a TraceNode, out: &mut Vec<&'a SpanRecord>) {
    out.push(&node.record);
    for child in &node.children {
        flatten(child, out);
    }
}

/// One traced scatter: a fresh root span on `tracer`, the scatter under
/// it, root dropped so its record lands in the ring. Returns the outcome,
/// the trace id, and the wall milliseconds.
fn traced_scatter(
    tables: &[&Table],
    config: &HummerConfig,
    registry: &FunctionRegistry,
    backend: &RemoteBackend,
    tracer: &Tracer,
) -> (ShardedOutcome, Option<u64>, f64) {
    let t0 = Instant::now();
    let root = tracer.trace("exp17_query");
    let trace_id = root.trace_id();
    let out = execute_sharded_with(tables, config, K_BIG, &[], registry, backend, &root)
        .expect("sharded scatter");
    drop(root);
    (out, trace_id, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() -> ExitCode {
    println!("E17 — distributed tracing across the shard boundary\n");
    let registry = FunctionRegistry::standard();

    let world = person_scale(LARGE_ENTITIES, SEED);
    let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
    let seq_cfg = sharded_config(Parallelism::sequential());
    let par_cfg = sharded_config(Parallelism::degree(4));

    // Single-shard sequential reference for every identity check.
    let prepared = prepare_tables(&tables, &seq_cfg).expect("prepare");
    let reference_fp = fingerprint(
        &fuse_prepared_par(
            &prepared,
            &[],
            &FunctionRegistry::standard(),
            Parallelism::sequential(),
        )
        .expect("fuse reference"),
    );
    println!(
        "large world: {} union rows under City blocking",
        prepared.integrated.len()
    );

    let (addr_a, stop_a) = start_worker(2);
    let (addr_b, stop_b) = start_worker(2);
    let backend = remote_backend(vec![addr_a.clone(), addr_b.clone()]);

    // ---- 1. Stitched tree: the cold query ------------------------------
    let tracer = Tracer::with_capacity(RING);
    let (cold, cold_trace, cold_ms) =
        traced_scatter(&tables, &par_cfg, &registry, &backend, &tracer);
    let cold_identical = fingerprint(&cold.outcome) == reference_fp;
    let trace_id = cold_trace.expect("enabled tracer allocates a trace id");
    let tree = tracer
        .trace_tree(trace_id)
        .expect("cold query trace is in the ring");
    let mut spans: Vec<&SpanRecord> = Vec::new();
    for root in &tree.roots {
        flatten(root, &mut spans);
    }
    let nodes: BTreeSet<&str> = spans.iter().filter_map(|r| r.node.as_deref()).collect();
    let has_stage = |name: &str, remote: bool| {
        spans
            .iter()
            .any(|r| r.name == name && r.node.is_some() == remote)
    };
    let worker_stages_present = WORKER_STAGES.iter().all(|s| has_stage(s, true));
    let coord_stages_present = COORD_STAGES.iter().all(|s| has_stage(s, false));
    let single_root = tree.roots.len() == 1 && tree.orphans == 0;
    println!(
        "cold query ({cold_ms:.0} ms): trace {trace_id:016x} stitched {} spans, \
         {} root(s), {} orphan(s), worker nodes {:?}",
        tree.span_count(),
        tree.roots.len(),
        tree.orphans,
        nodes
    );
    let stitched_passed = single_root
        && nodes.len() >= 2
        && worker_stages_present
        && coord_stages_present
        && cold_identical
        && cold.stats.retries == 0
        && cold.stats.fallbacks == 0;
    if !stitched_passed {
        eprintln!(
            "FAIL: stitched-tree gate — single_root={single_root}, distinct_nodes={}, \
             worker_stages={worker_stages_present}, coordinator_stages={coord_stages_present}, \
             identical={cold_identical}, retries={}, fallbacks={}",
            nodes.len(),
            cold.stats.retries,
            cold.stats.fallbacks
        );
        stop_a();
        stop_b();
        return ExitCode::FAILURE;
    }

    // ---- 2. Overhead matrix: instrumented vs bare, degrees 1–4 ---------
    // The bare side passes `Span::noop()`: no trace context goes on the
    // wire, so workers skip their capture tracer entirely — that is the
    // tracing-off configuration the ≤ 3% bar compares against.
    let mut rows = Vec::new();
    let mut cell_reports = Vec::new();
    let mut bare_total = 0.0f64;
    let mut instr_total = 0.0f64;
    for degree in 1..=4usize {
        let cfg = sharded_config(Parallelism::degree(degree));
        let mut bare_ms = f64::INFINITY;
        let mut instr_ms = f64::INFINITY;
        let mut bare_out = None;
        let mut instr_out = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let out = execute_sharded_with(
                &tables,
                &cfg,
                K_BIG,
                &[],
                &registry,
                &backend,
                &Span::noop(),
            )
            .expect("bare scatter");
            bare_ms = bare_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            bare_out = Some(out);
            let (out, _, ms) = traced_scatter(&tables, &cfg, &registry, &backend, &tracer);
            instr_ms = instr_ms.min(ms);
            instr_out = Some(out);
        }
        let bare_out = bare_out.expect("REPS >= 1");
        let instr_out = instr_out.expect("REPS >= 1");
        let bare_fp = fingerprint(&bare_out.outcome);
        if bare_fp != reference_fp || fingerprint(&instr_out.outcome) != bare_fp {
            eprintln!("FAIL: tracing on/off outputs diverged at degree {degree}");
            stop_a();
            stop_b();
            return ExitCode::FAILURE;
        }
        let overhead_pct = (instr_ms / bare_ms.max(1e-9) - 1.0) * 100.0;
        bare_total += bare_ms;
        instr_total += instr_ms;
        rows.push(vec![
            degree.to_string(),
            format!("{bare_ms:.1}"),
            format!("{instr_ms:.1}"),
            format!("{overhead_pct:+.2}%"),
        ]);
        cell_reports.push(
            Json::object()
                .with("degree", degree)
                .with("bare_ms", bare_ms)
                .with("instrumented_ms", instr_ms)
                .with("overhead_pct", overhead_pct)
                .with("identical", true),
        );
    }
    println!(
        "{}",
        render_table(
            &["threads", "bare ms", "instrumented ms", "overhead"],
            &rows
        )
    );
    let overhead_pct = (instr_total / bare_total.max(1e-9) - 1.0) * 100.0;
    let overhead_passed = overhead_pct <= OVERHEAD_BAR_PCT;
    println!(
        "aggregate: bare {:.1} ms, instrumented {:.1} ms -> {}% overhead (bar {}%)\n",
        bare_total,
        instr_total,
        f3(overhead_pct),
        OVERHEAD_BAR_PCT
    );

    // ---- 3. Fault drill: retry and fallback as spans -------------------
    // Kill worker B: its batch must retry on A, and the retry decision
    // must be visible as a span in the same stitched trace.
    stop_b();
    let one_dead = remote_backend(vec![addr_a.clone(), addr_b.clone()]);
    let (drilled, drill_trace, _) =
        traced_scatter(&tables, &par_cfg, &registry, &one_dead, &tracer);
    let retry_identical = fingerprint(&drilled.outcome) == reference_fp;
    let drill_tree = drill_trace
        .and_then(|id| tracer.trace_tree(id))
        .expect("drill trace is in the ring");
    let mut drill_spans: Vec<&SpanRecord> = Vec::new();
    for root in &drill_tree.roots {
        flatten(root, &mut drill_spans);
    }
    let retry_span = drill_spans.iter().any(|r| r.name == "retry");
    println!(
        "worker-kill drill: 1 of 2 dead -> {} retries, retry span in trace: {retry_span}, \
         identical={retry_identical}",
        drilled.stats.retries
    );
    if !retry_identical || drilled.stats.retries == 0 || !retry_span {
        eprintln!("FAIL: dead-worker retry was not traced or broke identity");
        stop_a();
        return ExitCode::FAILURE;
    }

    // Kill A too: every batch falls back locally; the fallback decision
    // must be a span in the trace.
    stop_a();
    let all_dead = remote_backend(vec![addr_a, addr_b]);
    let (fell_back, fb_trace, _) = traced_scatter(&tables, &par_cfg, &registry, &all_dead, &tracer);
    let fallback_identical = fingerprint(&fell_back.outcome) == reference_fp;
    let fb_tree = fb_trace
        .and_then(|id| tracer.trace_tree(id))
        .expect("fallback trace is in the ring");
    let mut fb_spans: Vec<&SpanRecord> = Vec::new();
    for root in &fb_tree.roots {
        flatten(root, &mut fb_spans);
    }
    let fallback_span = fb_spans.iter().any(|r| r.name == "fallback");
    println!(
        "worker-kill drill: all dead -> {} fallbacks, fallback span in trace: {fallback_span}, \
         identical={fallback_identical}\n",
        fell_back.stats.fallbacks
    );
    if !fallback_identical || fell_back.stats.fallbacks == 0 || !fallback_span {
        eprintln!("FAIL: local fallback was not traced or broke identity");
        return ExitCode::FAILURE;
    }

    // ---- Report ---------------------------------------------------------
    let report = Json::object()
        .with("experiment", "exp17_disttrace")
        .with(
            "world",
            Json::object()
                .with("scenario", "person_scale")
                .with("entities", LARGE_ENTITIES)
                .with("union_rows", prepared.integrated.len())
                .with("blocking_key", "City")
                .with("shard_ceiling", K_BIG),
        )
        .with(
            "stitched_trace",
            Json::object()
                .with("spans", tree.span_count())
                .with("distinct_nodes", nodes.len())
                .with("single_root", single_root)
                .with("orphans", tree.orphans)
                .with("worker_stage_spans", worker_stages_present)
                .with("coordinator_stage_spans", coord_stages_present)
                .with("identical", cold_identical)
                .with("passed", stitched_passed),
        )
        .with(
            "overhead_gate",
            Json::object()
                .with("cells", Json::Arr(cell_reports))
                .with("bare_total_ms", bare_total)
                .with("instrumented_total_ms", instr_total)
                .with("overhead_pct", overhead_pct)
                .with("bar_pct", OVERHEAD_BAR_PCT)
                .with("passed", overhead_passed),
        )
        .with(
            "fault_drill",
            Json::object()
                .with("one_dead_retries", drilled.stats.retries)
                .with("retry_span_in_trace", retry_span)
                .with("one_dead_identical", retry_identical)
                .with("all_dead_fallbacks", fell_back.stats.fallbacks)
                .with("fallback_span_in_trace", fallback_span)
                .with("all_dead_identical", fallback_identical),
        );
    let path = "BENCH_disttrace.json";
    std::fs::write(path, report.to_string_pretty()).expect("write BENCH_disttrace.json");
    println!("wrote {path}");

    if !overhead_passed {
        eprintln!(
            "FAIL: distributed tracing overhead is {}%, above the {OVERHEAD_BAR_PCT}% bar",
            f3(overhead_pct)
        );
        return ExitCode::FAILURE;
    }
    println!(
        "PASS: one stitched tree over {} worker nodes, fault drill traced, \
         overhead = {}% (<= {OVERHEAD_BAR_PCT}%), outputs bit-identical",
        nodes.len(),
        f3(overhead_pct)
    );
    ExitCode::SUCCESS
}
