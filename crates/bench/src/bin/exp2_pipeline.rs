//! E2 — Fig. 2 reproduction: the end-to-end dataflow on the paper's three
//! demo scenarios, with per-stage timings and gold-standard quality.

use hummer_bench::{f3, ms, render_table};
use hummer_core::{Hummer, HummerConfig, MatcherConfig, SniffConfig};
use hummer_datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer_datagen::{cluster_pair_metrics, correspondence_metrics, GeneratedWorld};

fn run_scenario(name: &str, world: &GeneratedWorld) -> Vec<String> {
    let mut h = Hummer::with_config(HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    });
    for s in &world.sources {
        h.repository_mut()
            .register_table(s.table.name().to_string(), s.table.clone())
            .unwrap();
    }
    let aliases: Vec<&str> = world.sources.iter().map(|s| s.table.name()).collect();
    let out = h.fuse_sources(&aliases, &[]).unwrap();

    // Matching F1 averaged over non-preferred sources.
    let mut match_f1 = 1.0;
    if !out.match_results.is_empty() {
        let mut sum = 0.0;
        for (i, m) in out.match_results.iter().enumerate() {
            let predicted: Vec<(String, String)> = m
                .correspondences
                .iter()
                .filter(|c| !c.right_column.eq_ignore_ascii_case(&c.left_column))
                .map(|c| (c.right_column.clone(), c.left_column.clone()))
                .collect();
            let gold: Vec<(String, String)> = world.gold_renames[i + 1]
                .iter()
                .filter(|(l, c)| !l.eq_ignore_ascii_case(c))
                .map(|(l, c)| (l.clone(), c.clone()))
                .collect();
            sum += correspondence_metrics(&predicted, &gold).f1();
        }
        match_f1 = sum / out.match_results.len() as f64;
    }
    let dup = cluster_pair_metrics(&out.detection.cluster_ids, &world.gold_union_entity_ids());

    vec![
        name.to_string(),
        world.sources.len().to_string(),
        out.integrated.len().to_string(),
        out.result.len().to_string(),
        out.conflict_count.to_string(),
        f3(match_f1),
        f3(dup.precision),
        f3(dup.recall),
        f3(dup.f1()),
        ms(out.timings.matching),
        ms(out.timings.transformation),
        ms(out.timings.detection),
        ms(out.timings.fusion),
    ]
}

fn main() {
    let rows = vec![
        run_scenario("cd_shopping", &cd_shopping(40, 2005)),
        run_scenario("disaster_registry", &disaster_registry(60, 26122004)),
        run_scenario("student_rosters", &student_rosters(40, 3)),
        run_scenario("cleansing_service", &cleansing_service(50, 7)),
    ];
    println!("E2 — end-to-end pipeline on the demo scenarios (Fig. 2 dataflow)\n");
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "src",
                "rows",
                "objects",
                "conflicts",
                "matchF1",
                "dupP",
                "dupR",
                "dupF1",
                "match_ms",
                "xform_ms",
                "detect_ms",
                "fuse_ms",
            ],
            &rows
        )
    );
}
