//! Criterion micro-benchmarks for every HumMer component, including the
//! ablations DESIGN.md §6 calls out (hash vs. nested-loop join, filter
//! on/off, soft vs. hard token matching).
//!
//! Sample sizes are kept small so `cargo bench --workspace` completes in
//! minutes; the experiment binaries (`exp1` … `exp8`) are the primary
//! quantitative artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hummer_core::{Hummer, HummerConfig, MatcherConfig, SniffConfig};
use hummer_datagen::{generate, DirtyConfig, EntityKind, SourceSpec};
use hummer_dupdetect::{
    candidate_pairs, detect_duplicates, field_similarity_with_range, numeric_field_similarity,
    score_candidate_pairs, select_attributes, CandidateSpec, CandidateStrategy, ColumnarMeasure,
    DetectorConfig, HeuristicConfig, PairScorer, Parallelism, TupleSimilarity,
};
use hummer_engine::expr::Expr;
use hummer_engine::ops::{hash_join, nested_loop_join, outer_union, JoinKind};
use hummer_engine::Table;
use hummer_fusion::{fuse, FunctionRegistry, FusionSpec, ResolutionSpec};
use hummer_matching::{match_tables, sniff_duplicates};
use hummer_query::{parse, run_query, TableSet};
use hummer_textsim::{jaro_winkler, levenshtein, word_tokens, Corpus, SoftTfIdf};
use std::hint::black_box;

fn person_world(n: usize, seed: u64) -> hummer_datagen::GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::Person,
        entities: n,
        sources: vec![
            SourceSpec::plain("A"),
            SourceSpec::plain("B")
                .rename("Name", "FullName")
                .rename("City", "Town")
                .shuffled(),
        ],
        coverage: 0.7,
        typo_rate: 0.08,
        null_rate: 0.05,
        conflict_rate: 0.1,
        dup_within_source: 0.0,
        seed,
    })
}

fn union_of(world: &hummer_datagen::GeneratedWorld) -> Table {
    let refs: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
    outer_union(&refs, "U").unwrap()
}

fn bench_textsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("textsim");
    g.sample_size(30);
    g.bench_function("levenshtein/10ch", |b| {
        b.iter(|| levenshtein(black_box("john smith"), black_box("jon smyth!")))
    });
    g.bench_function("jaro_winkler/10ch", |b| {
        b.iter(|| jaro_winkler(black_box("john smith"), black_box("jon smyth!")))
    });
    let docs: Vec<Vec<String>> = (0..500)
        .map(|i| word_tokens(&format!("artist {} album number {}", i % 40, i)))
        .collect();
    let corpus = Corpus::from_documents(docs.iter());
    let a = word_tokens("artist 7 album number 300");
    let b2 = word_tokens("artist 7 albun number 301");
    g.bench_function("tfidf_cosine", |b| {
        b.iter(|| corpus.tfidf_cosine(black_box(&a), black_box(&b2)))
    });
    let soft = SoftTfIdf::new(&corpus);
    g.bench_function("soft_tfidf", |b| {
        b.iter(|| soft.similarity(black_box(&a), black_box(&b2)))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    let w = person_world(500, 1);
    let a = &w.sources[0].table;
    let b2 = &w.sources[1].table;
    g.bench_function("outer_union/2x500", |bch| {
        bch.iter(|| outer_union(&[black_box(a), black_box(b2)], "U").unwrap())
    });
    // Ablation: hash join vs nested-loop join on the same equi-predicate.
    g.bench_function("hash_join/500x500", |bch| {
        bch.iter(|| hash_join(a, b2, "Name", "FullName", JoinKind::Inner).unwrap())
    });
    let pred = Expr::col("Name").eq(Expr::col("FullName"));
    g.bench_function("nested_loop_join/500x500", |bch| {
        bch.iter(|| nested_loop_join(a, b2, &pred, JoinKind::Inner).unwrap())
    });
    let csv = hummer_engine::csv::write_csv_str(a);
    g.bench_function("csv_parse/500rows", |bch| {
        bch.iter(|| hummer_engine::csv::read_csv_str("T", black_box(&csv)).unwrap())
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.sample_size(10);
    for n in [200usize, 1000] {
        let w = person_world(n, 2);
        let a = &w.sources[0].table;
        let b2 = &w.sources[1].table;
        g.bench_with_input(BenchmarkId::new("sniff_duplicates", n), &n, |bch, _| {
            bch.iter(|| {
                sniff_duplicates(
                    a,
                    b2,
                    &SniffConfig {
                        min_similarity: 0.3,
                        ..Default::default()
                    },
                )
            })
        });
        let cfg = MatcherConfig {
            sniff: SniffConfig {
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("match_tables", n), &n, |bch, _| {
            bch.iter(|| match_tables(a, b2, &cfg))
        });
    }
    g.finish();
}

fn bench_dupdetect(c: &mut Criterion) {
    let mut g = c.benchmark_group("dupdetect");
    g.sample_size(10);
    let w = person_world(400, 3);
    let u = union_of(&w);
    // Ablation: filter on/off, blocking.
    g.bench_function("all_pairs_no_filter", |bch| {
        bch.iter(|| {
            detect_duplicates(
                &u,
                &DetectorConfig {
                    use_filter: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.bench_function("all_pairs_filter", |bch| {
        bch.iter(|| detect_duplicates(&u, &DetectorConfig::default()).unwrap())
    });
    g.bench_function("sorted_neighborhood_w20", |bch| {
        bch.iter(|| {
            detect_duplicates(
                &u,
                &DetectorConfig {
                    candidates: CandidateSpec::SortedNeighborhood {
                        key: vec!["Name".into()],
                        window: 20,
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

/// The columnar-kernel benches (row vs. columnar on identical inputs):
/// TF-IDF weight vectors and the merge-join dot/norm sweep, the numeric
/// distance kernel with and without `Value` dispatch, and candidate-pair
/// scoring through both [`PairScorer`] variants.
fn bench_columnar(c: &mut Criterion) {
    let mut g = c.benchmark_group("columnar");
    g.sample_size(20);

    // TF-IDF: building the sorted SoA weight vector, and the merge-join
    // cosine over two prebuilt vectors (the hot sweep inside sniffing).
    let docs: Vec<Vec<String>> = (0..500)
        .map(|i| word_tokens(&format!("artist {} album number {}", i % 40, i)))
        .collect();
    let corpus = Corpus::from_documents(docs.iter());
    let ta = word_tokens("artist 7 album number 300 deluxe remastered edition");
    let tb = word_tokens("artist 7 albun number 301 deluxe remaster edition");
    g.bench_function("tfidf_weight_vector", |bch| {
        bch.iter(|| corpus.weight_vector(black_box(&ta)))
    });
    let va = corpus.weight_vector(&ta);
    let vb = corpus.weight_vector(&tb);
    g.bench_function("tfidf_cosine_merge_join", |bch| {
        bch.iter(|| black_box(&va).cosine(black_box(&vb)))
    });

    // Numeric distance: the raw f64 kernel vs. the Value-dispatching entry.
    let xs: Vec<f64> = (0..1024).map(|i| 19.0 + (i % 77) as f64 * 0.5).collect();
    let ys: Vec<f64> = (0..1024).map(|i| 19.0 + (i % 91) as f64 * 0.5).collect();
    g.bench_function("numeric_kernel_1024", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f64;
            for (x, y) in xs.iter().zip(&ys) {
                acc += numeric_field_similarity(black_box(*x), black_box(*y), Some(40.0));
            }
            acc
        })
    });
    let vxs: Vec<hummer_engine::Value> =
        xs.iter().map(|&x| hummer_engine::Value::Float(x)).collect();
    let vys: Vec<hummer_engine::Value> =
        ys.iter().map(|&y| hummer_engine::Value::Float(y)).collect();
    g.bench_function("numeric_value_dispatch_1024", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f64;
            for (x, y) in vxs.iter().zip(&vys) {
                acc += field_similarity_with_range(black_box(x), black_box(y), Some(40.0));
            }
            acc
        })
    });

    // Pair scoring: the same candidates through both scorer layouts.
    let w = person_world(1000, 7);
    let u = union_of(&w);
    let attrs = select_attributes(&u, &HeuristicConfig::default());
    let measure = TupleSimilarity::new(&u, attrs);
    let cm = ColumnarMeasure::from_measure(&measure);
    let candidates = candidate_pairs(
        &u,
        &CandidateStrategy::SortedNeighborhood {
            key_attrs: vec![u.resolve("Name").unwrap()],
            window: 15,
        },
    );
    let cfg = DetectorConfig::default();
    let seq = Parallelism::degree(1);
    g.bench_function("score_pairs_row", |bch| {
        bch.iter(|| {
            score_candidate_pairs(
                &PairScorer::Rows {
                    table: &u,
                    measure: &measure,
                },
                &cfg,
                black_box(&candidates),
                seq,
            )
        })
    });
    g.bench_function("score_pairs_columnar", |bch| {
        bch.iter(|| {
            score_candidate_pairs(
                &PairScorer::Columnar(&cm),
                &cfg,
                black_box(&candidates),
                seq,
            )
        })
    });
    g.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion");
    g.sample_size(20);
    let w = person_world(1000, 4);
    let mut u = union_of(&w);
    // Give it an object key: entity ids as a column.
    let ids = w.gold_union_entity_ids();
    u.add_column(
        hummer_engine::Column::new("objectID", hummer_engine::ColumnType::Int),
        |i, _| hummer_engine::Value::Int(ids[i] as i64),
    )
    .unwrap();
    let registry = FunctionRegistry::standard();
    for func in ["coalesce", "vote", "concat"] {
        g.bench_with_input(BenchmarkId::new("fuse_1400rows", func), &func, |bch, f| {
            let spec =
                FusionSpec::by_key(vec!["objectID"]).resolve("Name", ResolutionSpec::named(*f));
            bch.iter(|| fuse(&u, &spec, &registry).unwrap())
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    g.sample_size(30);
    let sql = "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students \
               WHERE Age > 18 FUSE BY (Name) HAVING Age > 20 ORDER BY Name";
    g.bench_function("parse", |bch| bch.iter(|| parse(black_box(sql)).unwrap()));

    let mut cat = TableSet::new();
    let w = person_world(300, 5);
    let mut a = w.sources[0].table.clone();
    a.set_name("EE_Student");
    let mut b2 = w.sources[1].table.clone();
    b2 = hummer_engine::ops::rename_column(&b2, "FullName", "Name").unwrap();
    b2.set_name("CS_Students");
    cat.add(a);
    cat.add(b2);
    let registry = FunctionRegistry::standard();
    g.bench_function("execute_fusion_600rows", |bch| {
        bch.iter(|| run_query(sql, &cat, &registry).unwrap())
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let w = person_world(200, 6);
    let mut h = Hummer::with_config(HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    });
    for s in &w.sources {
        h.repository_mut()
            .register_table(s.table.name().to_string(), s.table.clone())
            .unwrap();
    }
    g.bench_function("fuse_sources_2x200", |bch| {
        bch.iter(|| h.fuse_sources(&["A", "B"], &[]).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_textsim,
    bench_engine,
    bench_matching,
    bench_dupdetect,
    bench_columnar,
    bench_fusion,
    bench_query,
    bench_pipeline
);
criterion_main!(benches);
