//! Smoke test for the workspace surface itself: every module the `hummer`
//! facade re-exports is reachable under its documented name, and the
//! `table!` macro works through the facade path. Guards against a manifest
//! or re-export regression silently dropping a crate from the public API.

use hummer::engine::table;

#[test]
fn engine_module_and_table_macro() {
    let t = table! {
        "People" => ["Name", "Age"];
        ["Ada Lovelace", 36],
        ["Alan Turing", 41],
    };
    assert_eq!(t.len(), 2);
    assert!(t.schema().contains("Name"));
    let u = hummer::engine::ops::outer_union(&[&t, &t], "U").unwrap();
    assert_eq!(u.len(), 4);
    let v: hummer::engine::Value = hummer::engine::Value::Int(7);
    assert_eq!(v.to_string(), "7");
}

#[test]
fn textsim_module() {
    assert_eq!(hummer::textsim::levenshtein("kitten", "sitting"), 3);
    assert!(hummer::textsim::jaro_winkler("martha", "marhta") > 0.9);
    assert_eq!(
        hummer::textsim::word_tokens("Abbey Road!"),
        vec!["abbey", "road"]
    );
}

#[test]
fn matching_module() {
    let a = table! {
        "A" => ["Name", "City"];
        ["John Smith", "Berlin"],
        ["Mary Jones", "Hamburg"],
    };
    let b = table! {
        "B" => ["FullName", "Town"];
        ["John Smith", "Berlin"],
        ["Mary Jones", "Hamburg"],
    };
    let cfg = hummer::matching::MatcherConfig::default();
    let m = hummer::matching::match_tables(&a, &b, &cfg);
    assert_eq!(m.left_table, "A");
    assert_eq!(m.right_table, "B");
    let renames = m.rename_map();
    assert!(renames.is_empty() || renames.contains_key("FullName") || renames.contains_key("Town"));
}

#[test]
fn dupdetect_module() {
    let t = table! {
        "T" => ["Name", "City"];
        ["John Smith", "Berlin"],
        ["Jon Smith", "Berlin"],
        ["Mary Jones", "Hamburg"],
    };
    // Narrow 2-column schemas carry little evidence mass; lower the bar
    // below the wide-schema default (same knob the pipeline tests use).
    let cfg = hummer::dupdetect::DetectorConfig {
        threshold: 0.7,
        unsure_threshold: 0.55,
        ..Default::default()
    };
    let r = hummer::dupdetect::detect_duplicates(&t, &cfg).unwrap();
    assert_eq!(r.object_count(), 2);
}

#[test]
fn fusion_module() {
    let t = table! {
        "T" => ["Name", "Age"];
        ["John Smith", 24],
        ["John Smith", 25],
    };
    let registry = hummer::fusion::FunctionRegistry::standard();
    let spec = hummer::fusion::FusionSpec::by_key(vec!["Name"])
        .resolve("Age", hummer::fusion::ResolutionSpec::named("max"));
    let fused = hummer::fusion::fuse(&t, &spec, &registry).unwrap();
    assert_eq!(fused.table.len(), 1);
}

#[test]
fn query_module() {
    let q = hummer::query::parse("SELECT Name, RESOLVE(Age, max) FUSE FROM A, B FUSE BY (Name)")
        .unwrap();
    assert_eq!(q.fuse_by, Some(vec!["Name".to_string()]));
}

#[test]
fn datagen_module() {
    let world = hummer::datagen::generate(&hummer::datagen::DirtyConfig::two_sources(
        hummer::datagen::EntityKind::Person,
        10,
        42,
    ));
    assert_eq!(world.clean.len(), 10);
    assert_eq!(world.sources.len(), 2);
}

#[test]
fn core_module() {
    let mut h = hummer::core::Hummer::new();
    h.repository_mut()
        .register_table(
            "People",
            table! {
                "People" => ["Name", "Age"];
                ["John Smith", 24],
            },
        )
        .unwrap();
    assert_eq!(h.repository().len(), 1);
    assert!(h.repository().get("People").is_ok());
}
