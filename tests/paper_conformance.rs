//! E1 — conformance of the Fuse By dialect to the paper's Fig. 1 grammar
//! and the documented default behaviours (§2.1). Every statement here
//! parses *and* executes; the assertions pin the semantics the paper spells
//! out in prose.

use hummer::engine::{table, Value};
use hummer::fusion::FunctionRegistry;
use hummer::query::{parse, run_query, QueryError, TableSet};

fn catalog() -> TableSet {
    let mut c = TableSet::new();
    c.add(table! {
        "EE_Student" => ["Name", "Age"];
        ["Alice", 22],
        ["Bob", 24],
        ["Carol", 21],
    });
    c.add(table! {
        "CS_Students" => ["Name", "Age", "Semester"];
        ["Alice", 23, 5],
        ["Dora", 19, 1],
    });
    c.add(table! {
        "Shops" => ["Item", "Price", "Store", "Updated"];
        ["CD1", 10.0, "A", hummer::engine::Date::parse("2005-01-01").unwrap()],
        ["CD1", 9.0, "B", hummer::engine::Date::parse("2005-02-01").unwrap()],
        ["CD2", 15.0, "A", hummer::engine::Date::parse("2005-01-15").unwrap()],
    });
    c
}

fn run(sql: &str) -> hummer::query::QueryOutput {
    run_query(sql, &catalog(), &FunctionRegistry::standard()).unwrap_or_else(|e| {
        panic!("query failed: {e}\n  {sql}");
    })
}

/// Every syntactic production of Fig. 1 parses.
#[test]
fn fig1_grammar_coverage() {
    let statements = [
        // select list: colref | RESOLVE(colref) | RESOLVE(colref, function) | *
        "SELECT Name FUSE FROM EE_Student FUSE BY (Name)",
        "SELECT RESOLVE(Age) FUSE FROM EE_Student FUSE BY (Name)",
        "SELECT RESOLVE(Age, max) FUSE FROM EE_Student FUSE BY (Name)",
        "SELECT * FUSE FROM EE_Student FUSE BY (Name)",
        "SELECT Name, RESOLVE(Age, max), * FUSE FROM EE_Student FUSE BY (Name)",
        // FUSE FROM with multiple tablerefs
        "SELECT * FUSE FROM EE_Student, CS_Students FUSE BY (Name)",
        // where-clause
        "SELECT * FUSE FROM EE_Student WHERE Age > 21 FUSE BY (Name)",
        // FUSE BY with multiple colrefs
        "SELECT * FUSE FROM EE_Student FUSE BY (Name, Age)",
        // plain FROM retains SPJ semantics
        "SELECT Name FROM EE_Student",
        "SELECT EE_Student.Name FROM EE_Student, CS_Students WHERE EE_Student.Name = CS_Students.Name",
        // HAVING and ORDER BY keep their original meaning
        "SELECT Name, RESOLVE(Age, max) AS a FUSE FROM EE_Student, CS_Students FUSE BY (Name) HAVING a > 20 ORDER BY a DESC",
        // grouping & aggregation of the SQL subset
        "SELECT Name, count(*) FROM EE_Student GROUP BY Name",
        "SELECT avg(Age) FROM EE_Student",
        // resolution functions with arguments
        "SELECT RESOLVE(Price, choose('A')) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, mostrecent(Updated)) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Store, concat('; ')) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Store, annotatedconcat) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Store, vote) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Store, group) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Store, shortest), RESOLVE(Item, longest) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, first), RESOLVE(Updated, last) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, min) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, max) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, sum), RESOLVE(Store, vote) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, avg) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, median), RESOLVE(Updated, count) FUSE FROM Shops FUSE BY (Item)",
        "SELECT RESOLVE(Price, coalesce) FUSE FROM Shops FUSE BY (Item)",
    ];
    for sql in statements {
        parse(sql).unwrap_or_else(|e| panic!("parse failed: {e}\n  {sql}"));
        run(sql); // executes too
    }
}

/// §2.1: "the wildcard * is replaced by all attributes present in the
/// sources."
#[test]
fn wildcard_expands_to_all_source_attributes() {
    let out = run("SELECT * FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
    assert_eq!(out.table.schema().names(), vec!["Name", "Age", "Semester"]);
}

/// §2.1: "if there is no explicit conflict resolution function, SQL's
/// Coalesce is used as a default function."
#[test]
fn default_function_is_coalesce() {
    let out =
        run("SELECT Name, RESOLVE(Semester) FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
    let alice = out
        .table
        .rows()
        .iter()
        .find(|r| r[0] == Value::text("Alice"))
        .unwrap();
    // EE has no Semester column → NULL; CS supplies 5; Coalesce takes it.
    assert_eq!(alice[1], Value::Int(5));
}

/// §2.1: "using FUSE FROM combines the given tables by outer union instead
/// of cross product."
#[test]
fn fuse_from_is_outer_union() {
    let fused = run("SELECT * FUSE FROM EE_Student, CS_Students");
    assert_eq!(fused.table.len(), 5); // 3 + 2, not 3 × 2
    let crossed = run("SELECT * FROM EE_Student, CS_Students");
    assert_eq!(crossed.table.len(), 6); // plain FROM: cross product
}

/// §2.1: "the attributes given in the FUSE BY clause serve as object
/// identifier, and define which sets of tuples represent single real world
/// objects."
#[test]
fn fuse_by_defines_object_identity() {
    let out =
        run("SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
    assert_eq!(out.table.len(), 4); // Alice, Bob, Carol, Dora
    let mut names: Vec<String> = out.table.rows().iter().map(|r| r[0].to_string()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 4);
}

/// The paper's §2.1 example verbatim, with its stated outcome: "this
/// statement fuses data on EE- and CS Students, leaving just one tuple per
/// student. [...] conflicts in the age of the students are resolved by
/// taking the higher age."
#[test]
fn paper_example_semantics() {
    let out =
        run("SELECT Name, RESOLVE(Age, max)\nFUSE FROM EE_Student, CS_Students\nFUSE BY (Name)");
    let alice = out
        .table
        .rows()
        .iter()
        .find(|r| r[0] == Value::text("Alice"))
        .unwrap();
    assert_eq!(alice[1], Value::Int(23)); // max(22, 23)
}

/// §2.4's CHOOSE favors a named *source* — "possibly favoring the data of
/// the cheapest store" (§1). Here the stores are separate sources whose
/// alias becomes the `sourceID` during FUSE FROM.
#[test]
fn choose_and_mostrecent_use_context() {
    let mut c = TableSet::new();
    c.add(table! {
        "StoreA" => ["Item", "Price", "Updated"];
        ["CD1", 10.0, hummer::engine::Date::parse("2005-01-01").unwrap()],
        ["CD2", 15.0, hummer::engine::Date::parse("2005-01-15").unwrap()],
    });
    c.add(table! {
        "StoreB" => ["Item", "Price", "Updated"];
        ["CD1", 9.0, hummer::engine::Date::parse("2005-02-01").unwrap()],
    });
    let by_store = run_query(
        "SELECT Item, RESOLVE(Price, choose('StoreB')) FUSE FROM StoreA, StoreB FUSE BY (Item)",
        &c,
        &FunctionRegistry::standard(),
    )
    .unwrap();
    let cd1 = by_store
        .table
        .rows()
        .iter()
        .find(|r| r[0] == Value::text("CD1"))
        .unwrap();
    assert_eq!(cd1[1], Value::Float(9.0)); // store B's price

    let recent = run_query(
        "SELECT Item, RESOLVE(Price, mostrecent(Updated)) FUSE FROM StoreA, StoreB FUSE BY (Item)",
        &c,
        &FunctionRegistry::standard(),
    )
    .unwrap();
    let cd1 = recent
        .table
        .rows()
        .iter()
        .find(|r| r[0] == Value::text("CD1"))
        .unwrap();
    assert_eq!(cd1[1], Value::Float(9.0)); // the February offer
}

/// "HAVING and ORDER BY keep their original meaning" (§2.1).
#[test]
fn having_and_order_by_original_meaning() {
    let out = run(
        "SELECT Item, RESOLVE(Price, min) AS best FUSE FROM Shops FUSE BY (Item) \
         HAVING best < 12 ORDER BY best DESC",
    );
    assert_eq!(out.table.len(), 1); // only CD1 (best 9.0) passes HAVING
    assert_eq!(out.table.cell(0, 0), &Value::text("CD1"));
}

/// Error reporting: positions for syntax errors, names for unknown tables,
/// and a clear message for double-RESOLVEd columns.
#[test]
fn diagnostics() {
    match parse("SELECT FROM x") {
        Err(QueryError::Parse { position, .. }) => assert!(position >= 7),
        other => panic!("{other:?}"),
    }
    match run_query(
        "SELECT * FROM Missing",
        &catalog(),
        &FunctionRegistry::standard(),
    ) {
        Err(QueryError::UnknownTable(name)) => assert_eq!(name, "Missing"),
        other => panic!("{other:?}"),
    }
    match run_query(
        "SELECT RESOLVE(Price, min), RESOLVE(Price, max) FUSE FROM Shops FUSE BY (Item)",
        &catalog(),
        &FunctionRegistry::standard(),
    ) {
        Err(QueryError::Semantic(msg)) => assert!(msg.contains("RESOLVEd more than once")),
        other => panic!("{other:?}"),
    }
}

/// GROUP (the function) "returns a set of all conflicting values and leaves
/// resolution to the user."
#[test]
fn group_function_returns_value_set() {
    let out = run("SELECT Item, RESOLVE(Store, group) FUSE FROM Shops FUSE BY (Item)");
    let cd1 = out
        .table
        .rows()
        .iter()
        .find(|r| r[0] == Value::text("CD1"))
        .unwrap();
    assert_eq!(cd1[1], Value::text("{A, B}"));
}

/// Annotated CONCAT includes the data source (§2.4).
#[test]
fn annotated_concat_includes_sources() {
    let out = run("SELECT Item, RESOLVE(Price, annotatedconcat) FUSE FROM Shops FUSE BY (Item)");
    let cd1 = out
        .table
        .rows()
        .iter()
        .find(|r| r[0] == Value::text("CD1"))
        .unwrap();
    let s = cd1[1].to_string();
    assert!(s.contains("[Shops]"), "{s}"); // sourceID was synthesized from the table
}
