//! Group-commit WAL properties (crates/store/src/group.rs).
//!
//! 1. **Concurrent acks, sequential bytes**: N threads enqueue register
//!    records concurrently through the group-commit path; after a crash,
//!    recovery yields *every acked record*, and the on-disk WAL is
//!    bit-identical to the same records appended sequentially with
//!    per-record fsync. Batching never reorders acks: ticket sequence
//!    numbers, content versions, and the replay all agree on one order.
//! 2. **Torn final batch**: the WAL is truncated at *every byte boundary*
//!    of the final group-commit batch; recovery must succeed and contain
//!    exactly the records whose frames are fully inside the cut — the
//!    acked prefix, in ack order, never a partial mutation.

use hummer::engine::{Row, Table, Value};
use hummer::store::snapshot::wal_path;
use hummer::store::{wal, CatalogStore, StoreOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn temp_dir() -> PathBuf {
    hummer::store::scratch::dir("group_commit")
}

fn options(fsync: bool, window_us: u64) -> StoreOptions {
    StoreOptions {
        fsync,
        compact_after_bytes: 0, // no auto-compaction: the WAL is the record
        group_commit_window_us: window_us,
    }
}

/// A tiny one-column table whose content is `text` (so every record has a
/// distinct, size-varying payload).
fn small_table(name: &str, text: &str) -> Table {
    Table::from_rows(
        name,
        &["Note"],
        vec![Row::from_values(vec![Value::text(text)])],
    )
    .expect("literal table is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N concurrent appenders × random record sizes: every acked record
    /// recovers, in ack order, and the WAL bytes equal the sequential
    /// per-record-fsync appends of the same records.
    #[test]
    fn concurrent_acks_recover_in_order_with_sequential_bytes(
        threads in 2usize..5,
        per_thread in 1usize..5,
        window_us in prop_oneof![Just(0u64), Just(150u64)],
        texts in proptest::collection::vec("[a-zA-Z0-9 ]{0,24}", 16),
    ) {
        let dir = temp_dir();
        let (store, recovery) = CatalogStore::open(&dir, options(false, window_us)).unwrap();
        prop_assert_eq!(recovery.tables.len(), 0);
        let committer = store.committer();
        // (version, alias, table) in enqueue order — versions are assigned
        // under the same lock as the enqueue, so version order IS enqueue
        // order; the sequential replay below rebuilds the WAL from it.
        let log: Arc<Mutex<Vec<(u64, String, Table)>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::new(Mutex::new((store, 0u64)));
        let total = threads * per_thread;

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = Arc::clone(&store);
                let log = Arc::clone(&log);
                let committer = committer.clone();
                let texts = texts.clone();
                std::thread::spawn(move || {
                    let mut acked: Vec<(u64, u64)> = Vec::new(); // (seq, version)
                    for i in 0..per_thread {
                        let name = format!("T{t}_{i}");
                        let text = &texts[(t * 5 + i) % texts.len()];
                        let table = small_table(&name, text);
                        let (ticket, version) = {
                            let mut guard = store.lock().unwrap();
                            guard.1 += 1;
                            let version = guard.1;
                            let ticket = guard
                                .0
                                .enqueue_register(&name, version, &table)
                                .expect("enqueue");
                            log.lock().unwrap().push((version, name, table));
                            (ticket, version)
                        };
                        let seq = ticket.seq();
                        committer.wait(ticket).expect("group commit");
                        acked.push((seq, version));
                    }
                    acked
                })
            })
            .collect();
        let mut acked: Vec<(u64, u64)> = Vec::new();
        for h in handles {
            acked.extend(h.join().unwrap());
        }

        // Batching never reorders acks: sequence numbers and versions are
        // assigned under one lock, so sorting by either yields the same
        // permutation — and every enqueued record was acked exactly once.
        prop_assert_eq!(acked.len(), total);
        acked.sort_unstable();
        for (i, &(seq, version)) in acked.iter().enumerate() {
            prop_assert_eq!(seq, i as u64 + 1);
            prop_assert_eq!(version, i as u64 + 1);
        }

        // Crash (drop without compaction) and recover: exactly the acked
        // catalog, versions intact.
        let (store, _) = Arc::try_unwrap(store)
            .map_err(|_| ())
            .expect("threads joined")
            .into_inner()
            .unwrap();
        let group_commits = store.stats().group_commits;
        prop_assert!(group_commits >= 1 && group_commits <= total as u64);
        drop(store);
        let (_reopened, recovery) = CatalogStore::open(&dir, options(false, 0)).unwrap();
        prop_assert_eq!(recovery.tables.len(), total);
        prop_assert_eq!(recovery.last_version, total as u64);
        prop_assert_eq!(recovery.dropped_bytes, 0);
        let log = Arc::try_unwrap(log).expect("threads joined").into_inner().unwrap();
        for (version, name, table) in &log {
            let recovered = recovery
                .tables
                .iter()
                .find(|t| &t.alias == name)
                .expect("acked record recovered");
            prop_assert_eq!(recovered.version, *version);
            prop_assert_eq!(&recovered.table, table);
        }

        // Byte identity: replay the same records sequentially (one commit
        // + fsync per record) into a fresh store; the WAL files match
        // bit-for-bit.
        let seq_dir = temp_dir();
        let (mut seq_store, _) = CatalogStore::open(&seq_dir, options(true, 0)).unwrap();
        let mut ordered = log;
        ordered.sort_by_key(|(version, _, _)| *version);
        for (version, name, table) in &ordered {
            seq_store.log_register(name, *version, table).unwrap();
        }
        drop(seq_store);
        let grouped = std::fs::read(wal_path(&dir, 0)).unwrap();
        let sequential = std::fs::read(wal_path(&seq_dir, 0)).unwrap();
        prop_assert_eq!(grouped, sequential);

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&seq_dir).ok();
    }

    /// Truncate the WAL at every byte boundary of the final batch: recovery
    /// succeeds and holds exactly the records fully inside the cut.
    #[test]
    fn torn_final_batch_recovers_exactly_the_contained_prefix(
        prefix_records in 0usize..3,
        batch_records in 1usize..5,
        texts in proptest::collection::vec("[a-z]{0,40}", 8),
    ) {
        let dir = temp_dir();
        let (mut store, _) = CatalogStore::open(&dir, options(true, 0)).unwrap();

        // Acked prefix: one commit (and one fsync) per record.
        for i in 0..prefix_records {
            let name = format!("P{i}");
            let table = small_table(&name, &texts[i % texts.len()]);
            store.log_register(&name, i as u64 + 1, &table).unwrap();
        }
        let len_before = std::fs::metadata(wal_path(&dir, 0)).unwrap().len();

        // Final batch: enqueue everything, then wait once — a single group
        // commit writes all frames in one write_all.
        let commits_before = store.stats().group_commits;
        let mut frame_ends = Vec::new(); // absolute end offset of each frame
        let mut end = len_before;
        let mut last_ticket = None;
        for i in 0..batch_records {
            let name = format!("B{i}");
            let version = (prefix_records + i) as u64 + 1;
            let table = small_table(&name, &texts[(i + 3) % texts.len()]);
            end += wal::frame(&wal::encode_register_payload(&name, version, &table)).len() as u64;
            frame_ends.push(end);
            last_ticket = Some(store.enqueue_register(&name, version, &table).unwrap());
        }
        store.committer().wait(last_ticket.unwrap()).unwrap();
        prop_assert_eq!(store.stats().group_commits, commits_before + 1);
        drop(store);

        let bytes = std::fs::read(wal_path(&dir, 0)).unwrap();
        prop_assert_eq!(bytes.len() as u64, end);

        // Every byte boundary of the batch, from "none of it" to "all of it".
        for cut in len_before..=bytes.len() as u64 {
            let cut_dir = temp_dir();
            std::fs::write(wal_path(&cut_dir, 0), &bytes[..cut as usize]).unwrap();
            let contained = frame_ends.iter().filter(|&&e| e <= cut).count();
            let (_store, recovery) = CatalogStore::open(&cut_dir, options(true, 0)).unwrap();
            prop_assert!(
                recovery.tables.len() == prefix_records + contained,
                "cut at {} of {}: recovered {} tables, expected {}",
                cut,
                bytes.len(),
                recovery.tables.len(),
                prefix_records + contained
            );
            prop_assert_eq!(recovery.last_version, (prefix_records + contained) as u64);
            // The survivors are exactly the ack-order prefix.
            for i in 0..contained {
                let name = format!("B{i}");
                prop_assert!(recovery.tables.iter().any(|t| t.alias == name));
            }
            for i in contained..batch_records {
                let name = format!("B{i}");
                prop_assert!(!recovery.tables.iter().any(|t| t.alias == name));
            }
            std::fs::remove_dir_all(&cut_dir).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
