//! Properties of the columnar execution layer (the `ExecutionLayout` knob).
//!
//! 1. **Round-trip bit-identity**: `Row ⇄ ColumnarBatch` is the identity on
//!    adversarial tables — NaNs with payload bits, `-0.0`, empty strings vs.
//!    nulls, all-null columns, mixed-type columns. Compared with explicit
//!    `to_bits` on floats (a Debug fingerprint is not enough: every NaN
//!    prints as `NaN` regardless of payload).
//! 2. **Row vs. columnar fused-output equivalence**: across random scenario
//!    worlds and parallelism degrees 1–4, the full pipeline under
//!    `ExecutionLayout::Columnar` produces output bit-identical to
//!    `ExecutionLayout::Row`.

use hummer::core::{
    fuse_prepared_par, prepare_tables, ExecutionLayout, HummerConfig, Parallelism, PipelineOutcome,
};
use hummer::datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer::datagen::GeneratedWorld;
use hummer::engine::{ColumnarBatch, Date, Row, Table, Value};
use hummer::fusion::FunctionRegistry;
use hummer::matching::SniffConfig;
use proptest::prelude::*;

/// Adversarial cell values: beyond the durability-test set, this includes
/// non-finite floats and NaNs with distinct payload bits — the codec
/// conventions (PR 5) the batch layer must preserve.
fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (0u8..2).prop_map(|b| Value::Bool(b == 1)),
        (-10_000i64..10_000).prop_map(Value::Int),
        (-70_000i64..70_000).prop_map(|n| Value::Float(n as f64 / 7.0)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        Just(Value::Float(f64::NAN)),
        // A quiet NaN with a non-standard payload: survives only if the
        // batch stores the exact bits.
        Just(Value::Float(f64::from_bits(0x7ff8_0000_0000_00ffu64))),
        Just(Value::Text(String::new())), // empty string ≠ null
        "[a-z\"', \n]{0,10}".prop_map(Value::Text),
        ".{0,8}".prop_map(Value::Text),
        (2000i32..2030).prop_flat_map(|y| {
            (1u8..13).prop_flat_map(move |m| {
                (1u8..29).prop_map(move |d| Value::Date(Date::new(y, m, d).unwrap()))
            })
        }),
    ]
    .boxed()
}

/// Bitwise value equality: `to_bits` on floats, structural elsewhere.
fn values_bit_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => format!("{a:?}") == format!("{b:?}"),
    }
}

fn world_for(scenario: u8, entities: usize, seed: u64) -> GeneratedWorld {
    match scenario % 4 {
        0 => cd_shopping(entities, seed),
        1 => disaster_registry(entities, seed),
        2 => student_rosters(entities, seed),
        _ => cleansing_service(entities, seed),
    }
}

fn run(world: &GeneratedWorld, layout: ExecutionLayout, par: Parallelism) -> PipelineOutcome {
    let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
    let config = HummerConfig {
        matcher: hummer::core::MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        layout,
        ..Default::default()
    };
    let registry = FunctionRegistry::standard();
    let prepared = prepare_tables(&tables, &config).expect("prepare");
    fuse_prepared_par(&prepared, &[], &registry, par).expect("fuse")
}

/// Everything user-visible, rendered bit-exactly (`{:?}` on `f64` is the
/// shortest roundtrip form, so differing bits render differently; the
/// generated worlds produce no NaNs, so Debug is exact here).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.detection.pairs,
        out.conflict_count,
        out.sample_conflicts,
        out.match_results
            .iter()
            .map(|m| (&m.correspondences, &m.duplicates_used))
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Table → ColumnarBatch → Table` is the bitwise identity on
    /// adversarial tables, whatever mixture of types lands in a column.
    #[test]
    fn row_columnar_round_trip_is_bit_identity(
        rows in prop::collection::vec(prop::collection::vec(arb_value(), 3), 0..12),
    ) {
        let table = Table::from_rows(
            "Adversarial",
            &["A", "B", "C"],
            rows.iter().map(|v| Row::from_values(v.clone())).collect(),
        )
        .unwrap();
        let batch = ColumnarBatch::from_table(&table);
        // Random access agrees cell for cell…
        for (i, row) in table.rows().iter().enumerate() {
            for (j, v) in row.values().iter().enumerate() {
                prop_assert!(
                    values_bit_equal(v, &batch.value(i, j)),
                    "cell ({i},{j}) changed through the batch"
                );
            }
        }
        // …and so does the full materialized round trip.
        let back = batch.into_table().unwrap();
        prop_assert_eq!(table.name(), back.name());
        prop_assert_eq!(table.schema(), back.schema());
        prop_assert_eq!(table.len(), back.len());
        for (orig, round) in table.rows().iter().zip(back.rows()) {
            for (v, w) in orig.values().iter().zip(round.values()) {
                prop_assert!(values_bit_equal(v, w), "{v:?} != {w:?} after round trip");
            }
        }
    }

    /// An all-null column survives (as does a column that is all empty
    /// strings — two states a lossy layout could conflate).
    #[test]
    fn degenerate_columns_round_trip(len in 0usize..20) {
        let rows = (0..len)
            .map(|_| Row::from_values(vec![Value::Null, Value::Text(String::new())]))
            .collect();
        let table = Table::from_rows("Degenerate", &["AllNull", "AllEmpty"], rows).unwrap();
        let back = ColumnarBatch::from_table(&table).into_table().unwrap();
        prop_assert_eq!(table.rows(), back.rows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline equivalence: columnar == row for the whole pipeline, on
    /// a random scenario world, at every degree 1–4.
    #[test]
    fn columnar_pipeline_matches_row_pipeline(
        scenario in 0u8..4,
        entities in 8usize..40,
        seed in 0u64..1000,
    ) {
        let world = world_for(scenario, entities, seed);
        let reference = fingerprint(&run(&world, ExecutionLayout::Row, Parallelism::degree(1)));
        for degree in 1..=4 {
            let columnar = run(&world, ExecutionLayout::Columnar, Parallelism::degree(degree));
            prop_assert_eq!(&reference, &fingerprint(&columnar));
            // The row layout stays degree-stable too.
            let row = run(&world, ExecutionLayout::Row, Parallelism::degree(degree));
            prop_assert_eq!(&reference, &fingerprint(&row));
        }
    }
}
