//! Crash-safety properties of the durable catalog store.
//!
//! 1. **Codec round-trips** over adversarial values (quotes, commas,
//!    newlines, unicode, NaN-free floats incl. `-0.0`, nulls): engine
//!    value/table codec and the delta WAL-record codec are bit-exact.
//! 2. **Torn-tail recovery**: a random register/delta/deregister sequence
//!    is logged; the WAL is then truncated at *every byte boundary of the
//!    final record* — recovery must succeed and equal exactly the last
//!    fully-acked state (never a partial mutation).
//! 3. **Fusion byte-identity**: the recovered catalog produces bit-identical
//!    prepared artifacts to the pre-crash catalog at parallelism degrees
//!    1–4, and survives a compact → reopen cycle unchanged.

use hummer::core::{prepare_tables, HummerConfig, MatcherConfig, Parallelism, SniffConfig};
use hummer::delta::TableDelta;
use hummer::engine::codec::{
    read_table, read_value, write_table, write_value, ByteReader, ByteWriter,
};
use hummer::engine::{Date, Row, Table, Value};
use hummer::store::{CatalogStore, SnapshotEntry, StoreOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir() -> PathBuf {
    hummer::store::scratch::dir("durability")
}

fn config(par: Parallelism) -> HummerConfig {
    HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 8,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        ..Default::default()
    }
}

/// Adversarial cell values: nulls, bools, ints, finite floats (incl. the
/// sign of zero), text with quotes/commas/newlines/unicode, dates.
fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (0u8..2).prop_map(|b| Value::Bool(b == 1)),
        (-10_000i64..10_000).prop_map(Value::Int),
        (-70_000i64..70_000).prop_map(|n| Value::Float(n as f64 / 7.0)),
        Just(Value::Float(-0.0)),
        "[a-z\"', \n]{0,10}".prop_map(Value::Text),
        ".{0,8}".prop_map(Value::Text),
        (2000i32..2030).prop_flat_map(|y| {
            (1u8..13).prop_flat_map(move |m| {
                (1u8..29).prop_map(move |d| Value::Date(Date::new(y, m, d).unwrap()))
            })
        }),
    ]
    .boxed()
}

/// A full-arity (3-column) row of adversarial values.
fn arb_row() -> BoxedStrategy<Vec<Value>> {
    prop::collection::vec(arb_value(), 3).boxed()
}

/// One mutation plan: `(kind, alias_pick, row_pick, values)`. Interpreted
/// against the live state, so row indices are always made valid.
type MutationPlan = (u8, usize, usize, Vec<Vec<Value>>);

fn arb_mutation() -> BoxedStrategy<MutationPlan> {
    (0u8..8)
        .prop_flat_map(|kind| {
            (0usize..3).prop_flat_map(move |alias_pick| {
                (0usize..1000).prop_flat_map(move |row_pick| {
                    prop::collection::vec(arb_row(), 1..4)
                        .prop_map(move |values| (kind, alias_pick, row_pick, values))
                })
            })
        })
        .boxed()
}

const ALIASES: [&str; 3] = ["T0", "T1", "T2"];
const COLUMNS: [&str; 3] = ["Name", "Amount", "Note"];

/// The in-memory reference: alias → (version, table). What the store must
/// reproduce after any crash.
type Expected = BTreeMap<String, (u64, Table)>;

fn seed_table(alias: &str) -> Table {
    Table::from_rows(
        alias,
        &COLUMNS,
        vec![
            Row::from_values(vec![
                Value::text("John Smith"),
                Value::Int(24),
                Value::text("Berlin"),
            ]),
            Row::from_values(vec![
                Value::text("Mary Jones"),
                Value::Float(22.5),
                Value::text("Hamburg"),
            ]),
        ],
    )
    .unwrap()
}

/// Apply one plan to (store, expected); returns false if it was a no-op.
fn apply_mutation(store: &mut CatalogStore, expected: &mut Expected, plan: &MutationPlan) -> bool {
    let (kind, alias_pick, row_pick, values) = plan;
    let alias = ALIASES[alias_pick % ALIASES.len()];
    match kind % 4 {
        // Register / replace with a fresh table built from the plan's rows.
        0 => {
            let rows: Vec<Row> = values.iter().map(|v| Row::from_values(v.clone())).collect();
            let table = Table::from_rows(alias, &COLUMNS, rows).unwrap();
            let version = store.allocate_version();
            store.log_register(alias, version, &table).unwrap();
            expected.insert(alias.to_string(), (version, table));
            true
        }
        // Delta: insert every plan row; update/delete row_pick when valid.
        1 | 2 => {
            let Some((_, table)) = expected.get(alias) else {
                return false;
            };
            let mut delta = TableDelta::new(alias);
            if kind % 4 == 1 {
                for v in values {
                    delta = delta.insert(v.clone());
                }
                if !table.is_empty() {
                    delta = delta.delete(row_pick % table.len());
                }
            } else if !table.is_empty() {
                delta = delta.update(row_pick % table.len(), values[0].clone());
            } else {
                delta = delta.insert(values[0].clone());
            }
            let version = store.allocate_version();
            store.log_delta(alias, version, &delta).unwrap();
            let (table, _mapping) = delta.apply(table).unwrap();
            expected.insert(alias.to_string(), (version, table));
            true
        }
        // Deregister.
        _ => {
            if expected.remove(alias).is_none() {
                return false;
            }
            store.log_deregister(alias).unwrap();
            true
        }
    }
}

/// Recovered state as an `Expected` map (tables keep alias naming).
fn recovered_map(recovery: &hummer::store::Recovery) -> Expected {
    recovery
        .tables
        .iter()
        .map(|t| (t.alias.clone(), (t.version, t.table.clone())))
        .collect()
}

/// Bit-exact rendering of a table: name, ordered typed columns, and the raw
/// `Value` debug forms (which distinguish `Int(2)` from `Float(2.0)` and
/// `-0.0` from `0.0`, unlike `Value`'s grouping `PartialEq`).
fn table_fp(t: &Table) -> String {
    format!("{:?}|{:?}|{:?}", t.name(), t.schema().columns(), t.rows())
}

/// Bit-exact rendering of a whole catalog state.
fn state_fp(state: &Expected) -> String {
    state
        .iter()
        .map(|(alias, (version, table))| format!("{alias}@{version}:{}", table_fp(table)))
        .collect::<Vec<_>>()
        .join(";")
}

/// Bit-exact fingerprint of the prepared artifacts (the delta contract's
/// comparison set, minus run-scoped stats).
fn fingerprint(p: &hummer::core::PreparedSources) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        p.annotated.rows(),
        p.annotated.schema().names(),
        p.detection.pairs,
        p.detection.unsure,
        p.detection.cluster_ids,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine codec: adversarial values and whole tables round-trip
    /// bit-exactly (debug form covers `-0.0` vs `0.0` and Int vs Float).
    #[test]
    fn value_and_table_codec_round_trip(rows in prop::collection::vec(arb_row(), 0..6)) {
        for row in &rows {
            for v in row {
                let mut w = ByteWriter::new();
                write_value(&mut w, v);
                let bytes = w.into_bytes();
                let mut r = ByteReader::new(&bytes);
                let back = read_value(&mut r).unwrap();
                prop_assert_eq!(format!("{:?}", v), format!("{:?}", back));
                prop_assert!(r.is_exhausted());
            }
        }
        let table = Table::from_rows(
            "Adversarial",
            &COLUMNS,
            rows.iter().map(|v| Row::from_values(v.clone())).collect(),
        )
        .unwrap();
        let mut w = ByteWriter::new();
        write_table(&mut w, &table);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_table(&mut r).unwrap();
        prop_assert!(r.is_exhausted());
        prop_assert_eq!(table_fp(&table), table_fp(&back));
    }

    /// Delta codec: encode/decode is the identity on random batches.
    #[test]
    fn delta_codec_round_trip(
        inserts in prop::collection::vec(arb_row(), 0..3),
        updates in prop::collection::vec(arb_row(), 0..3),
        deletes in prop::collection::vec(0usize..50, 0..3),
    ) {
        let mut delta = TableDelta::new("T");
        for v in &inserts {
            delta = delta.insert(v.clone());
        }
        for (i, v) in updates.iter().enumerate() {
            delta = delta.update(100 + i, v.clone());
        }
        for d in &deletes {
            delta = delta.delete(*d);
        }
        let mut w = ByteWriter::new();
        hummer::delta::encode_delta(&mut w, &delta);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = hummer::delta::decode_delta(&mut r).unwrap();
        prop_assert!(r.is_exhausted());
        prop_assert_eq!(format!("{:?}", delta), format!("{:?}", back));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline crash property: log a random mutation sequence, then
    /// truncate the WAL at every byte boundary of the final record.
    /// Recovery must succeed at each cut and equal the last fully-acked
    /// state; the fully-recovered catalog must fuse bit-identically to the
    /// reference at degrees 1–4 and survive compact → reopen.
    #[test]
    fn truncated_wal_recovers_last_acked_state(
        mutations in prop::collection::vec(arb_mutation(), 1..6),
    ) {
        let dir = temp_dir();
        let options = StoreOptions {
            fsync: false,            // page cache is enough for this test
            compact_after_bytes: 0,  // keep one WAL, no auto-compaction
            group_commit_window_us: 0,
        };
        let (mut store, _) = CatalogStore::open(&dir, options.clone()).unwrap();
        let mut expected: Expected = BTreeMap::new();

        // Seed: both fusion sources registered (acked baseline).
        for alias in ["T0", "T1"] {
            let table = seed_table(alias);
            let version = store.allocate_version();
            store.log_register(alias, version, &table).unwrap();
            expected.insert(alias.to_string(), (version, table));
        }

        // Random mutation sequence; remember the state + WAL length right
        // before the final effective mutation.
        let mut before_final = (expected.clone(), store.stats().wal_bytes);
        for plan in &mutations {
            let snapshot = (expected.clone(), store.stats().wal_bytes);
            if apply_mutation(&mut store, &mut expected, plan) {
                before_final = snapshot;
            }
        }
        let full_len = store.stats().wal_bytes;
        drop(store); // crash

        let wal_file = dir.join("wal-0.log");
        let wal_bytes = std::fs::read(&wal_file).unwrap();
        prop_assert_eq!(wal_bytes.len() as u64, full_len);
        let (prev_state, prev_len) = before_final;

        // Every truncation point across the final record.
        for cut in prev_len..=full_len {
            let cut_dir = temp_dir();
            std::fs::write(cut_dir.join("wal-0.log"), &wal_bytes[..cut as usize]).unwrap();
            let (_s, recovery) = CatalogStore::open(&cut_dir, options.clone()).unwrap();
            let want = if cut == full_len { &expected } else { &prev_state };
            prop_assert!(
                state_fp(&recovered_map(&recovery)) == state_fp(want),
                "cut at byte {cut} of [{prev_len}, {full_len}] recovered the wrong state"
            );
            std::fs::remove_dir_all(&cut_dir).ok();
        }

        // Full recovery fuses bit-identically to the in-memory reference at
        // every parallelism degree (when sources remain to fuse).
        let (mut store, recovery) = CatalogStore::open(&dir, options.clone()).unwrap();
        let recovered = recovered_map(&recovery);
        prop_assert_eq!(state_fp(&recovered), state_fp(&expected));
        let reference: Vec<&Table> = expected.values().map(|(_, t)| t).collect();
        let fusable = !reference.is_empty() && reference.iter().all(|t| !t.is_empty());
        if fusable {
            let recovered_tables: Vec<&Table> = recovered.values().map(|(_, t)| t).collect();
            let want = fingerprint(
                &prepare_tables(&reference, &config(Parallelism::sequential())).unwrap(),
            );
            for degree in 1..=4usize {
                let got = fingerprint(
                    &prepare_tables(&recovered_tables, &config(Parallelism::degree(degree)))
                        .unwrap(),
                );
                prop_assert!(got == want, "prepared artifacts diverged at degree {degree}");
            }
        }

        // Compact → reopen: same catalog, now snapshot-seeded.
        let entries: Vec<SnapshotEntry<'_>> = expected
            .iter()
            .map(|(alias, (version, table))| SnapshotEntry {
                alias,
                version: *version,
                table,
            })
            .collect();
        store.compact(&entries).unwrap();
        drop(store);
        let (_s, reloaded) = CatalogStore::open(&dir, options).unwrap();
        prop_assert_eq!(reloaded.snapshot_generation, Some(1));
        prop_assert_eq!(reloaded.replayed_records, 0);
        prop_assert_eq!(state_fp(&recovered_map(&reloaded)), state_fp(&expected));

        std::fs::remove_dir_all(&dir).ok();
    }
}
