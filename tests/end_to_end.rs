//! Cross-crate integration tests: the full HumMer pipeline on generated
//! scenario worlds, with quality floors asserted against gold standards.

use hummer::core::{Hummer, HummerConfig, MatcherConfig, ResolutionSpec, SniffConfig};
use hummer::datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer::datagen::{cluster_pair_metrics, correspondence_metrics, GeneratedWorld};
use hummer::engine::Value;

fn hummer_for(world: &GeneratedWorld) -> Hummer {
    let mut h = Hummer::with_config(HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    });
    for s in &world.sources {
        h.repository_mut()
            .register_table(s.table.name().to_string(), s.table.clone())
            .unwrap();
    }
    h
}

#[test]
fn cd_shopping_pipeline_quality() {
    let world = cd_shopping(40, 2005);
    let h = hummer_for(&world);
    let aliases: Vec<&str> = world.sources.iter().map(|s| s.table.name()).collect();
    let out = h
        .fuse_sources(
            &aliases,
            &[("Price".to_string(), ResolutionSpec::named("min"))],
        )
        .unwrap();

    // Fusion must reduce cardinality to (roughly) the number of entities
    // actually covered.
    assert!(out.result.len() < out.integrated.len());
    assert!(out.result.len() >= 40 * 5 / 10, "not everything collapsed");

    // Schema matching recall: every gold rename recovered (precision may
    // admit spurious same-named pairs, recall is the claim).
    for (i, m) in out.match_results.iter().enumerate() {
        let predicted: Vec<(String, String)> = m
            .correspondences
            .iter()
            .map(|c| (c.right_column.clone(), c.left_column.clone()))
            .collect();
        let gold: Vec<(String, String)> = world.gold_renames[i + 1]
            .iter()
            .filter(|(l, c)| !l.eq_ignore_ascii_case(c))
            .map(|(l, c)| (l.clone(), c.clone()))
            .collect();
        let pr = correspondence_metrics(&predicted, &gold);
        assert!(
            pr.recall >= 0.99,
            "matching recall vs {}: {:?}",
            m.right_table,
            pr
        );
    }

    // Duplicate detection on this noise level: high precision, usable recall.
    let pr = cluster_pair_metrics(&out.detection.cluster_ids, &world.gold_union_entity_ids());
    assert!(pr.precision >= 0.9, "precision {:?}", pr);
    assert!(pr.recall >= 0.4, "recall {:?}", pr);
}

#[test]
fn disaster_registry_pipeline_quality() {
    let world = disaster_registry(60, 26122004);
    let h = hummer_for(&world);
    let aliases: Vec<&str> = world.sources.iter().map(|s| s.table.name()).collect();
    let out = h
        .fuse_sources(
            &aliases,
            &[("LastSeen".to_string(), ResolutionSpec::named("max"))],
        )
        .unwrap();
    let pr = cluster_pair_metrics(&out.detection.cluster_ids, &world.gold_union_entity_ids());
    assert!(pr.precision >= 0.7, "{pr:?}");
    assert!(pr.recall >= 0.3, "{pr:?}");
    assert!(out.result.len() < out.integrated.len());
}

#[test]
fn cleansing_service_dedup_quality() {
    let world = cleansing_service(50, 7);
    let h = hummer_for(&world);
    let out = h.fuse_sources(&["CustomerDump"], &[]).unwrap();
    let pr = cluster_pair_metrics(&out.detection.cluster_ids, &world.gold_union_entity_ids());
    assert!(pr.f1() >= 0.8, "{pr:?}");
}

#[test]
fn student_rosters_query_mode() {
    let world = student_rosters(30, 3);
    let h = hummer_for(&world);
    // The query speaks only the preferred (EE) schema; CS columns are
    // FullName/Years and must be aligned automatically.
    let out = h
        .query(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) \
             ORDER BY Name",
        )
        .unwrap();
    assert_eq!(out.table.schema().names(), vec!["Name", "Age"]);
    assert!(!out.table.is_empty());
    // FUSE BY (Name) ⇒ names unique in the output.
    let mut names: Vec<String> = out.table.rows().iter().map(|r| r[0].to_string()).collect();
    let n = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), n, "FUSE BY key must be unique in the result");
}

#[test]
fn fused_result_has_no_remaining_near_duplicates() {
    // Consistency check from the paper's promise: the result is "a single,
    // consistent, and clean representation" — re-running detection on the
    // fused output finds (almost) nothing left to merge.
    let world = cleansing_service(40, 99);
    let h = hummer_for(&world);
    let out = h.fuse_sources(&["CustomerDump"], &[]).unwrap();
    let mut h2 = Hummer::new();
    h2.repository_mut()
        .register_table("Fused", out.result.clone())
        .unwrap();
    let second_pass = h2.fuse_sources(&["Fused"], &[]).unwrap();
    let shrink = out.result.len() - second_pass.result.len();
    assert!(
        shrink <= out.result.len() / 10,
        "second pass still merged {shrink} of {} rows",
        out.result.len()
    );
}

#[test]
fn fusion_improves_completeness() {
    // Fused tuples should be at least as complete (non-null cells per
    // entity) as the best single source row — COALESCE fills gaps.
    let world = disaster_registry(40, 5);
    let h = hummer_for(&world);
    let out = h
        .fuse_sources(
            &world
                .sources
                .iter()
                .map(|s| s.table.name())
                .collect::<Vec<_>>(),
            &[],
        )
        .unwrap();
    let fused_nn: usize = out.result.rows().iter().map(|r| r.non_null_count()).sum();
    let fused_cells: usize = out.result.len() * out.result.schema().len();
    let integ_nn: usize = out
        .integrated
        .rows()
        .iter()
        .map(|r| r.non_null_count())
        .sum();
    // integrated has 2 extra bookkeeping cols, all non-null; exclude them.
    let integ_nn = integ_nn - out.integrated.len(); // sourceID always set
    let integ_cells: usize = out.integrated.len() * (out.integrated.schema().len() - 1);
    let fused_density = fused_nn as f64 / fused_cells as f64;
    let integ_density = integ_nn as f64 / integ_cells as f64;
    assert!(
        fused_density >= integ_density - 1e-9,
        "fusion must not lose values: {fused_density:.3} vs {integ_density:.3}"
    );
}

#[test]
fn lineage_covers_every_non_null_cell() {
    let world = student_rosters(25, 11);
    let h = hummer_for(&world);
    let out = h
        .fuse_sources(
            &world
                .sources
                .iter()
                .map(|s| s.table.name())
                .collect::<Vec<_>>(),
            &[],
        )
        .unwrap();
    for row in 0..out.result.len() {
        for col in 0..out.result.schema().len() {
            let v = out.result.cell(row, col);
            let cell = out.lineage.cell(row, col);
            if v != &Value::Null {
                assert!(
                    !cell.row_indices.is_empty(),
                    "non-null cell ({row},{col}) must have provenance"
                );
            }
        }
    }
}
