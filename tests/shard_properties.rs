//! Property tests for the scatter-gather shard executor (ISSUE 9): across
//! random scenario worlds, shard ceilings K ∈ 1..8, and parallelism degrees
//! 1–4, the shard-merge output must be *bit-identical* to the single-shard
//! pipeline — same fused rows (NaN payloads and `-0.0` included via `{:?}`
//! rendering), same cluster ids, same accepted/unsure pairs with their
//! similarity bits, same conflict samples.
//!
//! A second property audits the planner's co-occurrence invariant directly:
//! no candidate pair may straddle a shard boundary, rows partition the
//! union exactly, and the union of per-shard candidate lists is the global
//! candidate list.

use hummer::core::{fuse_prepared_par, prepare_tables, HummerConfig, Parallelism, PipelineOutcome};
use hummer::datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer::datagen::GeneratedWorld;
use hummer::dupdetect::{candidate_pairs, resolve_candidate_strategy};
use hummer::engine::Table;
use hummer::fusion::{FunctionRegistry, ResolutionSpec};
use hummer::shard::{execute_sharded, key_equality_spec, plan_shards};
use proptest::prelude::*;

mod wire_version {
    //! Wire-frame version negotiation (ISSUE 10 satellite): a v1 worker
    //! reading a v2 coordinator's frame — and the reverse — must fail with
    //! the typed [`ShardError::VersionMismatch`] carrying the offending
    //! version byte, never hang on a length it mis-parsed or decode
    //! garbage into a partial.

    use hummer::engine::table;
    use hummer::engine::ExecutionLayout;
    use hummer::fusion::ResolutionSpec;
    use hummer::shard::{
        decode_request, decode_response, encode_request, encode_response, JobSpec, Shard,
        ShardError, SHARD_WIRE_VERSION,
    };

    fn spec() -> JobSpec {
        JobSpec {
            attributes: vec!["Name".into(), "City".into()],
            threshold: 0.77,
            unsure_threshold: 0.6,
            use_filter: true,
            layout: ExecutionLayout::Columnar,
            resolutions: vec![("City".into(), ResolutionSpec::named("vote"))],
        }
    }

    fn request_bytes() -> Vec<u8> {
        let t = table! {
            "Integrated" => ["Name", "City"];
            ["ann", "berlin"],
            ["bob", "hamburg"],
        };
        let shards = vec![Shard {
            rows: vec![0, 1],
            candidates: vec![(0, 1)],
        }];
        encode_request(&t, &spec(), &shards, Some((0xbeef, 9)))
    }

    /// Patch the version byte (fixed offset 4, right after the magic) to
    /// impersonate another protocol generation.
    fn with_version(mut bytes: Vec<u8>, version: u8) -> Vec<u8> {
        bytes[4] = version;
        bytes
    }

    #[test]
    fn v1_frame_at_v2_worker_is_typed_mismatch() {
        // An old coordinator (v1) calling this binary's worker.
        let bytes = with_version(request_bytes(), 1);
        match decode_request(&bytes) {
            Err(ShardError::VersionMismatch { got, expected }) => {
                assert_eq!(got, 1);
                assert_eq!(expected, SHARD_WIRE_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn v3_frame_at_v2_worker_is_typed_mismatch() {
        // A *newer* peer too: the check is an equality, not a minimum, so
        // layout changes in either direction fail fast.
        let bytes = with_version(request_bytes(), 3);
        match decode_request(&bytes) {
            Err(ShardError::VersionMismatch { got, expected }) => {
                assert_eq!(got, 3);
                assert_eq!(expected, SHARD_WIRE_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_response_at_coordinator_is_typed_mismatch() {
        // The reverse direction: a v2 coordinator decoding an old worker's
        // response frame.
        let bytes = with_version(encode_response(&[], &[]), 1);
        match decode_response(&bytes, 2) {
            Err(ShardError::VersionMismatch { got, expected }) => {
                assert_eq!(got, 1);
                assert_eq!(expected, SHARD_WIRE_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn mismatch_error_names_both_versions() {
        let bytes = with_version(request_bytes(), 1);
        let message = decode_request(&bytes).unwrap_err().to_string();
        assert!(message.contains("version mismatch"), "{message}");
        assert!(message.contains("v1"), "{message}");
        assert!(
            message.contains(&format!("v{SHARD_WIRE_VERSION}")),
            "{message}"
        );
    }

    #[test]
    fn matching_version_still_roundtrips() {
        // Control: the untouched frame decodes, trace context intact.
        let (_, spec2, shards, trace) = decode_request(&request_bytes()).expect("roundtrip");
        assert_eq!(spec2, spec());
        assert_eq!(shards.len(), 1);
        assert_eq!(trace, Some((0xbeef, 9)));
    }
}

fn world_for(scenario: u8, entities: usize, seed: u64) -> GeneratedWorld {
    match scenario % 4 {
        0 => cd_shopping(entities, seed),
        1 => disaster_registry(entities, seed),
        2 => student_rosters(entities, seed),
        _ => cleansing_service(entities, seed),
    }
}

/// The shardable configuration: key-equality blocking on the first source's
/// first column (the scenario worlds' text identifier), which makes each
/// key group its own candidate-graph component so K > 1 actually fans out.
fn sharded_config(world: &GeneratedWorld, par: Parallelism) -> HummerConfig {
    let key = world.sources[0].table.schema().names()[0].to_string();
    let mut config = HummerConfig {
        parallelism: par,
        ..Default::default()
    };
    config.detector.candidates = key_equality_spec(key);
    config
}

fn resolutions_for(integrated: &Table) -> Vec<(String, ResolutionSpec)> {
    if integrated.schema().contains("Title") {
        vec![("Title".to_string(), ResolutionSpec::named("longest"))]
    } else {
        Vec::new()
    }
}

/// Everything user-visible, rendered bit-exactly (`{:?}` on `f64` is the
/// shortest roundtrip form, so differing bits — NaN payloads, `-0.0` —
/// render differently).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.detection.pairs,
        out.detection.unsure,
        out.conflict_count,
        out.sample_conflicts,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shard-merge == single-shard pipeline for every shard ceiling 1..8
    /// and intra-shard parallelism degree 1–4, on a random scenario world.
    #[test]
    fn sharded_matches_single_shard(
        scenario in 0u8..4,
        entities in 6usize..24,
        seed in 0u64..1000,
    ) {
        let world = world_for(scenario, entities, seed);
        let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let registry = FunctionRegistry::standard();

        let ref_config = sharded_config(&world, Parallelism::sequential());
        let prepared = prepare_tables(&tables, &ref_config).expect("prepare");
        let resolutions = resolutions_for(&prepared.integrated);
        let reference = fingerprint(
            &fuse_prepared_par(&prepared, &resolutions, &registry, Parallelism::sequential())
                .expect("fuse"),
        );

        for degree in 1..=4 {
            let config = sharded_config(&world, Parallelism::degree(degree));
            for k in 1..=8 {
                let sharded = execute_sharded(&tables, &config, k, &resolutions, &registry)
                    .expect("sharded");
                assert_eq!(
                    &reference,
                    &fingerprint(&sharded.outcome),
                    "k={k} degree={degree}"
                );
                prop_assert!(sharded.shards <= k);
            }
        }
    }

    /// Planner co-occurrence audit: rows partition the union, no candidate
    /// pair straddles a shard boundary, and the per-shard candidate lists
    /// reassemble into exactly the global candidate list.
    #[test]
    fn no_candidate_pair_straddles_a_shard(
        scenario in 0u8..4,
        entities in 6usize..30,
        seed in 0u64..1000,
        k in 1usize..8,
    ) {
        let world = world_for(scenario, entities, seed);
        let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let config = sharded_config(&world, Parallelism::sequential());
        let prepared = prepare_tables(&tables, &config).expect("prepare");
        let integrated = &prepared.integrated;

        let cfg = config.detector_config();
        let plan = plan_shards(integrated, &cfg, k).expect("plan");
        prop_assert_eq!(plan.audit(integrated.len()), 0);
        prop_assert!(plan.shards.len() <= k);

        let strategy = resolve_candidate_strategy(integrated, &cfg.candidates).expect("strategy");
        let mut global = candidate_pairs(integrated, &strategy);
        global.sort_unstable();
        let mut reassembled: Vec<(usize, usize)> = plan
            .shards
            .iter()
            .flat_map(|s| s.candidates.iter().copied())
            .collect();
        reassembled.sort_unstable();
        prop_assert_eq!(global, reassembled);
    }
}
