//! Cross-crate property-based tests: invariants of the pipeline that must
//! hold on arbitrary (generated) inputs.

use hummer::datagen::{generate, DirtyConfig, EntityKind, SourceSpec};
use hummer::dupdetect::{detect_duplicates, DetectorConfig};
use hummer::engine::ops::outer_union;
use hummer::engine::{Row, Table, Value};
use hummer::fusion::{fuse, FunctionRegistry, FusionSpec};
use hummer::query::parse;
use proptest::prelude::*;

/// Strategy: a small random table of text/int/null cells.
fn arb_table() -> impl Strategy<Value = Table> {
    let cell = prop_oneof![
        2 => "[a-z]{1,8}".prop_map(Value::text),
        2 => (0i64..50).prop_map(Value::Int),
        1 => Just(Value::Null),
    ];
    (2usize..5).prop_flat_map(move |width| {
        let cols: Vec<String> = (0..width).map(|i| format!("c{i}")).collect();
        prop::collection::vec(prop::collection::vec(cell.clone(), width), 0..25).prop_map(
            move |rows| {
                Table::from_rows("T", &cols, rows.into_iter().map(Row::from_values).collect())
                    .expect("arity matches by construction")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fusion by a key is idempotent: fusing a fused table is a no-op.
    #[test]
    fn fusion_idempotent(t in arb_table()) {
        let registry = FunctionRegistry::standard();
        let spec = FusionSpec::by_key(vec!["c0"]);
        let once = fuse(&t, &spec, &registry).unwrap();
        let twice = fuse(&once.table, &spec, &registry).unwrap();
        prop_assert_eq!(once.table.rows(), twice.table.rows());
        prop_assert_eq!(twice.conflict_count, 0);
    }

    /// Fusion never increases cardinality, and the key is unique afterwards.
    #[test]
    fn fusion_key_unique(t in arb_table()) {
        let registry = FunctionRegistry::standard();
        let spec = FusionSpec::by_key(vec!["c0"]);
        let fused = fuse(&t, &spec, &registry).unwrap();
        prop_assert!(fused.table.len() <= t.len());
        let mut keys: Vec<Value> = fused.table.rows().iter().map(|r| r[0].clone()).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }

    /// The outer union has Σ|Tᵢ| rows and the name-wise union of columns.
    #[test]
    fn outer_union_cardinality(a in arb_table(), b in arb_table()) {
        let u = outer_union(&[&a, &b], "U").unwrap();
        prop_assert_eq!(u.len(), a.len() + b.len());
        for c in a.schema().names().iter().chain(b.schema().names().iter()) {
            prop_assert!(u.schema().contains(c));
        }
    }

    /// The upper-bound filter never changes detection output, only cost.
    #[test]
    fn filter_is_lossless(seed in 0u64..500) {
        let cfg = DirtyConfig {
            entities: 12,
            dup_within_source: 0.3,
            ..DirtyConfig::two_sources(EntityKind::Person, 12, seed)
        };
        let world = generate(&cfg);
        let refs: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let u = outer_union(&refs, "U").unwrap();
        if u.is_empty() {
            return Ok(());
        }
        let with = detect_duplicates(&u, &DetectorConfig { use_filter: true, ..Default::default() }).unwrap();
        let without = detect_duplicates(&u, &DetectorConfig { use_filter: false, ..Default::default() }).unwrap();
        prop_assert_eq!(&with.pairs, &without.pairs);
        prop_assert_eq!(&with.cluster_ids, &without.cluster_ids);
        prop_assert!(with.stats.compared <= without.stats.compared);
    }

    /// Detection similarity classification respects thresholds, pairs are
    /// canonical (left < right), and cluster ids are dense.
    #[test]
    fn detection_invariants(seed in 0u64..500) {
        let world = generate(&DirtyConfig::two_sources(EntityKind::Cd, 15, seed));
        let refs: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
        let u = outer_union(&refs, "U").unwrap();
        if u.is_empty() {
            return Ok(());
        }
        let cfg = DetectorConfig::default();
        let det = detect_duplicates(&u, &cfg).unwrap();
        for p in &det.pairs {
            prop_assert!(p.left < p.right);
            prop_assert!(p.similarity >= cfg.threshold);
        }
        for p in &det.unsure {
            prop_assert!(p.similarity >= cfg.unsure_threshold);
            prop_assert!(p.similarity < cfg.threshold);
        }
        // Dense cluster ids: 0..object_count, every id used.
        let max = det.cluster_ids.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(max + 1, det.object_count());
        // Pairs imply same cluster.
        for p in &det.pairs {
            prop_assert_eq!(det.cluster_ids[p.left], det.cluster_ids[p.right]);
        }
    }

    /// The parser never panics on arbitrary input (errors are values).
    #[test]
    fn parser_total(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Generated worlds always satisfy their own gold-standard invariants.
    #[test]
    fn generated_world_consistency(seed in 0u64..300, entities in 1usize..30) {
        let cfg = DirtyConfig {
            sources: vec![
                SourceSpec::plain("A"),
                SourceSpec::plain("B").rename("Name", "Person").shuffled(),
            ],
            ..DirtyConfig::two_sources(EntityKind::Person, entities, seed)
        };
        let world = generate(&cfg);
        prop_assert_eq!(world.clean.len(), entities);
        let ids = world.gold_union_entity_ids();
        let total: usize = world.sources.iter().map(|s| s.table.len()).sum();
        prop_assert_eq!(ids.len(), total);
        for (i, j) in world.gold_union_pairs() {
            prop_assert!(i < j);
            prop_assert_eq!(ids[i], ids[j]);
        }
        // The gold rename map covers every column of every source.
        for (s, renames) in world.sources.iter().zip(&world.gold_renames) {
            for col in s.table.schema().names() {
                prop_assert!(renames.contains_key(col), "missing gold for {col}");
            }
        }
    }
}
