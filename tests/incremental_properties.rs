//! The delta subsystem's contract as a property: a random sequence of
//! deltas (inserts / updates / deletes across scenario worlds) applied
//! incrementally equals a from-scratch rebuild, bit-for-bit, at every
//! parallelism degree 1–4 — prepared artifacts *and* the incrementally
//! maintained fused view.

use hummer::core::{
    fuse_prepared, prepare_tables, HummerConfig, MatcherConfig, Parallelism, PreparedSources,
    SniffConfig,
};
use hummer::datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer::delta::{concat_mappings, FusedView, RowMapping, TableDelta};
use hummer::engine::{Table, Value};
use hummer::fusion::FunctionRegistry;
use proptest::prelude::*;

fn config(par: Parallelism) -> HummerConfig {
    HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 8,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        ..Default::default()
    }
}

/// One op in the generated plan: `(kind, row_pick, perturbation)`.
type OpPlan = (u8, usize, String);
/// One delta in the plan: `(source_pick, ops)`.
type DeltaPlan = (usize, Vec<OpPlan>);

/// Interpret an op plan against a concrete table, avoiding row conflicts.
fn build_delta(table: &Table, plan: &[OpPlan]) -> TableDelta {
    let mut delta = TableDelta::new(table.name());
    let mut used: Vec<usize> = Vec::new();
    for (kind, pick, text) in plan {
        let n = table.len();
        match kind % 3 {
            0 => {
                // Insert: clone a row (or synthesize) and perturb its first
                // text cell so the new row is genuinely new content.
                let mut values: Vec<Value> = if n == 0 {
                    table
                        .schema()
                        .names()
                        .iter()
                        .map(|_| Value::text(text.clone()))
                        .collect()
                } else {
                    table.rows()[pick % n].values().to_vec()
                };
                if let Some(v) = values.iter_mut().find(|v| matches!(v, Value::Text(_))) {
                    *v = Value::text(format!("{v} {text}"));
                }
                delta = delta.insert(values);
            }
            1 if n > 0 => {
                let row = pick % n;
                if used.contains(&row) {
                    continue;
                }
                used.push(row);
                let mut values: Vec<Value> = table.rows()[row].values().to_vec();
                if let Some(v) = values.iter_mut().find(|v| matches!(v, Value::Text(_))) {
                    *v = Value::text(format!("{text} {v}"));
                } else if let Some(v) = values.first_mut() {
                    *v = Value::text(text.clone());
                }
                delta = delta.update(row, values);
            }
            2 if n > 1 => {
                let row = pick % n;
                if used.contains(&row) {
                    continue;
                }
                used.push(row);
                delta = delta.delete(row);
            }
            _ => {}
        }
    }
    delta
}

/// Everything the byte-identity contract covers (stats excluded).
fn assert_prepared_identical(
    a: &PreparedSources,
    b: &PreparedSources,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(
        a.integrated.rows() == b.integrated.rows(),
        "integrated: {context}"
    );
    prop_assert!(
        a.annotated.schema().names() == b.annotated.schema().names(),
        "schema: {context}"
    );
    prop_assert!(
        a.annotated.rows() == b.annotated.rows(),
        "annotated: {context}"
    );
    prop_assert!(a.detection.pairs == b.detection.pairs, "pairs: {context}");
    prop_assert!(
        a.detection.unsure == b.detection.unsure,
        "unsure: {context}"
    );
    prop_assert!(
        a.detection.cluster_ids == b.detection.cluster_ids,
        "cluster_ids: {context}"
    );
    prop_assert!(
        a.detection.clusters == b.detection.clusters,
        "clusters: {context}"
    );
    prop_assert!(
        a.detection.attributes_used == b.detection.attributes_used,
        "attributes: {context}"
    );
    Ok(())
}

fn arb_op() -> BoxedStrategy<OpPlan> {
    (0u8..6)
        .prop_flat_map(|kind| {
            (0usize..1000)
                .prop_flat_map(move |pick| "[a-z]{2,6}".prop_map(move |text| (kind, pick, text)))
        })
        .boxed()
}

fn arb_deltas() -> BoxedStrategy<Vec<DeltaPlan>> {
    let delta = (0usize..4).prop_flat_map(|source| {
        prop::collection::vec(arb_op(), 1..5).prop_map(move |ops| (source, ops))
    });
    prop::collection::vec(delta, 1..3).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental == from-scratch, bit-for-bit, for degrees 1–4, across a
    /// random delta sequence over a random scenario world.
    #[test]
    fn delta_sequence_equals_rebuild(
        which in 0usize..4,
        seed in 0u64..1000,
        entities in 16usize..28,
        deltas in arb_deltas(),
    ) {
        let world = match which {
            0 => cd_shopping(entities, seed),
            1 => disaster_registry(entities, seed),
            2 => student_rosters(entities, seed),
            _ => cleansing_service(entities, seed),
        };
        let mut tables: Vec<Table> = world.sources.iter().map(|s| s.table.clone()).collect();
        let refs: Vec<&Table> = tables.iter().collect();
        let registry = FunctionRegistry::standard();
        let mut prepared = prepare_tables(&refs, &config(Parallelism::sequential())).unwrap();
        let mut view = FusedView::new(
            &prepared.annotated,
            &prepared.detection,
            &[],
            &registry,
            Parallelism::sequential(),
        )
        .unwrap();

        for (step, (source_pick, ops)) in deltas.iter().enumerate() {
            let s = source_pick % tables.len();
            let delta = build_delta(&tables[s], ops);
            let mut maps: Vec<RowMapping> = Vec::new();
            let mut next_tables: Vec<Table> = Vec::new();
            for (i, t) in tables.iter().enumerate() {
                if i == s {
                    let (nt, m) = delta.apply(t).unwrap();
                    next_tables.push(nt);
                    maps.push(m);
                } else {
                    next_tables.push(t.clone());
                    maps.push(RowMapping::identity(t.len()));
                }
            }
            let mapping = concat_mappings(&maps).unwrap();
            let next_refs: Vec<&Table> = next_tables.iter().collect();

            // From-scratch reference.
            let scratch = prepare_tables(&next_refs, &config(Parallelism::sequential())).unwrap();

            // Incremental at degrees 1–4, all bit-identical to the reference.
            let mut upgraded_at_one: Option<PreparedSources> = None;
            for degree in 1..=4usize {
                let (upgraded, _report) = prepared
                    .apply_delta(&next_refs, &mapping, &config(Parallelism::degree(degree)))
                    .unwrap();
                assert_prepared_identical(
                    &upgraded,
                    &scratch,
                    &format!("step {step}, degree {degree}"),
                )?;
                if degree == 1 {
                    upgraded_at_one = Some(upgraded);
                }
            }
            let upgraded = upgraded_at_one.expect("degree 1 ran");

            // The incrementally maintained fused view equals from-scratch
            // fusion over the updated artifacts.
            view.apply_delta(&upgraded.annotated, &upgraded.detection, &mapping, &registry)
                .unwrap();
            let scratch_fused = fuse_prepared(&scratch, &[], &registry).unwrap();
            prop_assert!(
                view.table().rows() == scratch_fused.result.rows(),
                "fused view diverged at step {step}"
            );
            prop_assert!(
                view.fused().conflict_count == scratch_fused.conflict_count,
                "conflict count diverged at step {step}"
            );
            prop_assert!(
                view.fused().sample_conflicts == scratch_fused.sample_conflicts,
                "samples diverged at step {step}"
            );

            tables = next_tables;
            prepared = upgraded;
        }
    }
}
