//! Property test for the intra-query parallel layer (ISSUE 3): across
//! random scenario worlds and thread counts 1–8, the parallel pipeline must
//! produce output *identical* to the sequential pipeline — same fused
//! rows, same cluster ids and duplicate pairs (to the bit, including
//! similarity scores), same conflict samples, same correspondences.
//!
//! Determinism rests on two properties checked here end to end:
//! `hummer_par`'s in-input-order merges, and the order-stable float
//! accumulation in `hummer_textsim` (token-sorted TF-IDF vectors).

use hummer::core::{fuse_prepared_par, prepare_tables, HummerConfig, Parallelism, PipelineOutcome};
use hummer::datagen::scenarios::{
    cd_shopping, cleansing_service, disaster_registry, student_rosters,
};
use hummer::datagen::GeneratedWorld;
use hummer::engine::Table;
use hummer::fusion::{FunctionRegistry, ResolutionSpec};
use hummer::matching::SniffConfig;
use proptest::prelude::*;

fn world_for(scenario: u8, entities: usize, seed: u64) -> GeneratedWorld {
    match scenario % 4 {
        0 => cd_shopping(entities, seed),
        1 => disaster_registry(entities, seed),
        2 => student_rosters(entities, seed),
        _ => cleansing_service(entities, seed),
    }
}

fn run(world: &GeneratedWorld, par: Parallelism) -> PipelineOutcome {
    let tables: Vec<&Table> = world.sources.iter().map(|s| &s.table).collect();
    let config = HummerConfig {
        matcher: hummer::core::MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        parallelism: par,
        ..Default::default()
    };
    let registry = FunctionRegistry::standard();
    let prepared = prepare_tables(&tables, &config).expect("prepare");
    // Exercise an explicit resolution alongside the COALESCE default.
    let resolutions = [("Title".to_string(), ResolutionSpec::named("longest"))];
    let resolutions: &[(String, ResolutionSpec)] = if prepared.integrated.schema().contains("Title")
    {
        &resolutions
    } else {
        &[]
    };
    fuse_prepared_par(&prepared, resolutions, &registry, par).expect("fuse")
}

/// Everything user-visible, rendered bit-exactly (`{:?}` on `f64` is the
/// shortest roundtrip form, so differing bits render differently).
fn fingerprint(out: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}",
        out.result.rows(),
        out.result.schema().names(),
        out.detection.cluster_ids,
        out.detection.pairs,
        out.conflict_count,
        out.sample_conflicts,
        out.match_results
            .iter()
            .map(|m| (&m.correspondences, &m.duplicates_used))
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel == sequential for every thread count 1–8, on a random
    /// scenario world of random size.
    #[test]
    fn parallel_pipeline_matches_sequential(
        scenario in 0u8..4,
        entities in 8usize..40,
        seed in 0u64..1000,
    ) {
        let world = world_for(scenario, entities, seed);
        let sequential = run(&world, Parallelism::sequential());
        let reference = fingerprint(&sequential);
        for degree in 2..=8 {
            let parallel = run(&world, Parallelism::degree(degree));
            prop_assert_eq!(&reference, &fingerprint(&parallel));
        }
    }

    /// Re-running the *same* configuration twice is also bit-stable (no
    /// hash-order or thread-timing leakage into results).
    #[test]
    fn pipeline_is_run_to_run_deterministic(
        scenario in 0u8..4,
        seed in 0u64..1000,
    ) {
        let world = world_for(scenario, 20, seed);
        let a = run(&world, Parallelism::degree(4));
        let b = run(&world, Parallelism::degree(4));
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
