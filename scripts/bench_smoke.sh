#!/usr/bin/env bash
# Smoke-test the columnar execution layer: run the exp13 gate binary, which
# (1) asserts byte-identity between the row and columnar paths across every
# scenario world, layout, and parallelism degree 1-4, (2) enforces the
# >= 1.5x single-thread columnar speedup on large-world pair scoring, and
# (3) writes BENCH_columnar.json. The script then sanity-checks the report.
set -euo pipefail

BIN=${BIN:-./target/release/exp13_columnar}

[ -x "$BIN" ] || { echo "missing $BIN (build with: cargo build --release -p hummer_bench --bin exp13_columnar)"; exit 1; }

"$BIN"

REPORT=BENCH_columnar.json
[ -f "$REPORT" ] || { echo "$REPORT was not written"; exit 1; }
grep -q '"identical_between_layouts": *true' "$REPORT" \
    || { echo "report does not record layout identity:"; cat "$REPORT"; exit 1; }
grep -q '"passed": *true' "$REPORT" \
    || { echo "scoring gate not passed:"; cat "$REPORT"; exit 1; }

echo "bench smoke test OK ($REPORT)"
