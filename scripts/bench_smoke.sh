#!/usr/bin/env bash
# Smoke-test the performance gates:
#  - exp13: byte-identity between the row and columnar paths across every
#    scenario world, layout, and parallelism degree 1-4, plus the >= 1.5x
#    single-thread columnar speedup on large-world pair scoring
#    (writes BENCH_columnar.json);
#  - exp14: the observability contract — the fully-instrumented pipeline
#    (stage spans + counters) within 3% of bare wall time on the 10k-row
#    person_scale world, bit-identical output (writes BENCH_observability.json);
#  - exp15: the event-loop serving contract — fused output bit-identical to
#    the blocking server at degrees 1-4, p99 at 128 connections no worse
#    than the blocking baseline's p99 at 8, overload sheds with 503 and
#    keeps serving, and group-commit fsync delta throughput >= 85% of
#    no-fsync (writes BENCH_serving2.json);
#  - exp16: the scatter-gather sharding contract — sharded output
#    bit-identical to the single-shard pipeline across K in {1,2,4,8} x
#    degrees 1-4, balanced work division over two workers, and the
#    worker-kill fault drill (retry + local fallback keep answers
#    byte-identical; writes BENCH_sharding.json);
#  - exp17: the distributed-tracing contract — a cold 2-worker scatter
#    yields ONE stitched trace tree with spans from >= 2 distinct worker
#    nodes and every worker stage span, retry/fallback decisions appear
#    as spans in the same trace, and the instrumented scatter stays
#    within 3% of bare with bit-identical output at degrees 1-4
#    (writes BENCH_disttrace.json).
# The script then sanity-checks all five reports.
set -euo pipefail

BIN=${BIN:-./target/release/exp13_columnar}
OBS_BIN=${OBS_BIN:-./target/release/exp14_observability}
SERVE_BIN=${SERVE_BIN:-./target/release/exp15_serving}
SHARD_BIN=${SHARD_BIN:-./target/release/exp16_sharding}
TRACE_BIN=${TRACE_BIN:-./target/release/exp17_disttrace}

[ -x "$BIN" ] || { echo "missing $BIN (build with: cargo build --release -p hummer_bench --bin exp13_columnar)"; exit 1; }
[ -x "$OBS_BIN" ] || { echo "missing $OBS_BIN (build with: cargo build --release -p hummer_bench --bin exp14_observability)"; exit 1; }
[ -x "$SERVE_BIN" ] || { echo "missing $SERVE_BIN (build with: cargo build --release -p hummer_bench --bin exp15_serving)"; exit 1; }
[ -x "$SHARD_BIN" ] || { echo "missing $SHARD_BIN (build with: cargo build --release -p hummer_bench --bin exp16_sharding)"; exit 1; }
[ -x "$TRACE_BIN" ] || { echo "missing $TRACE_BIN (build with: cargo build --release -p hummer_bench --bin exp17_disttrace)"; exit 1; }

"$BIN"

REPORT=BENCH_columnar.json
[ -f "$REPORT" ] || { echo "$REPORT was not written"; exit 1; }
grep -q '"identical_between_layouts": *true' "$REPORT" \
    || { echo "report does not record layout identity:"; cat "$REPORT"; exit 1; }
grep -q '"passed": *true' "$REPORT" \
    || { echo "scoring gate not passed:"; cat "$REPORT"; exit 1; }

"$OBS_BIN"

OBS_REPORT=BENCH_observability.json
[ -f "$OBS_REPORT" ] || { echo "$OBS_REPORT was not written"; exit 1; }
grep -q '"passed": *true' "$OBS_REPORT" \
    || { echo "observability overhead gate not passed:"; cat "$OBS_REPORT"; exit 1; }
grep -q '"identical": *true' "$OBS_REPORT" \
    || { echo "report does not record instrumented/bare identity:"; cat "$OBS_REPORT"; exit 1; }

"$SERVE_BIN"

SERVE_REPORT=BENCH_serving2.json
[ -f "$SERVE_REPORT" ] || { echo "$SERVE_REPORT was not written"; exit 1; }
for gate in identity_degrees_1_4 p99_at_128_conns_le_baseline \
            overload_sheds_and_survives group_commit_ratio_ge_085; do
    grep -q "\"$gate\": *true" "$SERVE_REPORT" \
        || { echo "serving gate $gate not passed:"; cat "$SERVE_REPORT"; exit 1; }
done

"$SHARD_BIN"

SHARD_REPORT=BENCH_sharding.json
[ -f "$SHARD_REPORT" ] || { echo "$SHARD_REPORT was not written"; exit 1; }
if grep -q '"identical": *false' "$SHARD_REPORT"; then
    echo "a sharded run diverged from the single-shard pipeline:"; cat "$SHARD_REPORT"; exit 1
fi
if grep -q '"passed": *false' "$SHARD_REPORT"; then
    echo "a sharding gate failed:"; cat "$SHARD_REPORT"; exit 1
fi
for gate in one_dead_identical all_dead_identical no_fallback_errors; do
    grep -q "\"$gate\": *true" "$SHARD_REPORT" \
        || { echo "fault drill gate $gate not passed:"; cat "$SHARD_REPORT"; exit 1; }
done

"$TRACE_BIN"

TRACE_REPORT=BENCH_disttrace.json
[ -f "$TRACE_REPORT" ] || { echo "$TRACE_REPORT was not written"; exit 1; }
if grep -q '"identical": *false' "$TRACE_REPORT"; then
    echo "a traced run diverged from the bare pipeline:"; cat "$TRACE_REPORT"; exit 1
fi
if grep -q '"passed": *false' "$TRACE_REPORT"; then
    echo "a distributed-tracing gate failed:"; cat "$TRACE_REPORT"; exit 1
fi
for gate in single_root worker_stage_spans coordinator_stage_spans \
            retry_span_in_trace fallback_span_in_trace \
            one_dead_identical all_dead_identical; do
    grep -q "\"$gate\": *true" "$TRACE_REPORT" \
        || { echo "distributed-tracing gate $gate not passed:"; cat "$TRACE_REPORT"; exit 1; }
done

echo "bench smoke test OK ($REPORT, $OBS_REPORT, $SERVE_REPORT, $SHARD_REPORT, $TRACE_REPORT)"
