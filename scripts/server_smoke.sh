#!/usr/bin/env bash
# Smoke-test a release build of hummer-serve: start it on an ephemeral-ish
# port, upload the paper's two student tables, run the paper's FUSE query,
# assert HTTP 200 and the fused row count, scrape the Prometheus /metrics
# exposition and a per-request /trace/{id} span tree, then shut down
# gracefully. A second section exercises durability: --data-dir, kill -9,
# restart on the same directory, byte-identical fusion result, recovery
# stats in /metrics.json and on the Prometheus exposition. A third section
# exercises the event loop at depth: a 128-connection mixed burst through
# loadgen, then kill -9 while concurrent deltas are inside a widened
# group-commit window — the restart must serve byte-identical fusion output.
# A fourth section exercises coordinator mode: a coordinator scattering
# shard batches to two workers must answer byte-identically to a plain
# server, survive a kill -9 of one worker mid-burst (retry on the
# survivor / local fallback), and still answer cold queries byte-identically
# with the worker dead.
set -euo pipefail

BIN=${BIN:-./target/release/hummer-serve}
LOADGEN_BIN=${LOADGEN_BIN:-./target/release/loadgen}
PROMLINT_BIN=${PROMLINT_BIN:-./target/release/promlint}
PORT=${PORT:-$((20000 + RANDOM % 20000))}
ADDR="127.0.0.1:${PORT}"
DATA_DIR=$(mktemp -d)

"$BIN" --addr "$ADDR" --threads 2 --narrow-schemas &
SERVER_PID=$!
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
    if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -sf "http://${ADDR}/healthz" >/dev/null

# Upload the paper's example tables (must both answer 200).
code=$(curl -s -o /tmp/put1.json -w '%{http_code}' -X PUT "http://${ADDR}/tables/EE_Student" \
    --data-binary $'Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n')
[ "$code" = 200 ] || { echo "PUT EE_Student -> $code"; cat /tmp/put1.json; exit 1; }
code=$(curl -s -o /tmp/put2.json -w '%{http_code}' -X PUT "http://${ADDR}/tables/CS_Students" \
    --data-binary $'FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n')
[ "$code" = 200 ] || { echo "PUT CS_Students -> $code"; cat /tmp/put2.json; exit 1; }

# The paper's query: 6 heterogeneous rows fuse into 4 students.
code=$(curl -s -o /tmp/query.json -w '%{http_code}' -X POST "http://${ADDR}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)')
[ "$code" = 200 ] || { echo "POST /query -> $code"; cat /tmp/query.json; exit 1; }
grep -q '"row_count":4' /tmp/query.json || { echo "unexpected fusion result:"; cat /tmp/query.json; exit 1; }

# Unknown tables must 404.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR}/query" -d 'SELECT * FROM Ghosts')
[ "$code" = 404 ] || { echo "expected 404 for unknown table, got $code"; exit 1; }

# Delta ingestion: insert a fifth student, which must *upgrade* the cached
# prepared pipeline (not invalidate it) — the re-query reflects the insert
# AND reports a cache hit, i.e. no cold re-prepare.
code=$(curl -s -o /tmp/delta.json -w '%{http_code}' -X POST "http://${ADDR}/tables/CS_Students/delta" \
    -H 'content-type: application/json' \
    -d '{"insert": [["Grace Hopper", "37", "Arlington"]]}')
[ "$code" = 200 ] || { echo "POST delta -> $code"; cat /tmp/delta.json; exit 1; }
grep -q '"upgraded":1' /tmp/delta.json || { echo "delta did not upgrade the cache:"; cat /tmp/delta.json; exit 1; }

code=$(curl -s -o /tmp/query2.json -w '%{http_code}' -X POST "http://${ADDR}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)')
[ "$code" = 200 ] || { echo "POST /query after delta -> $code"; cat /tmp/query2.json; exit 1; }
grep -q '"row_count":5' /tmp/query2.json || { echo "delta not reflected:"; cat /tmp/query2.json; exit 1; }
grep -q '"cache":"hit"' /tmp/query2.json || { echo "expected an upgraded-cache hit:"; cat /tmp/query2.json; exit 1; }

# Delta counters are visible in /metrics.json.
curl -sf "http://${ADDR}/metrics.json" | grep -q '"cache_upgrades":1' \
    || { echo "delta counters missing from /metrics.json"; exit 1; }

# /metrics is Prometheus text: after the query and the delta above, the
# stage histograms and the delta counters must be present.
curl -sf "http://${ADDR}/metrics" -o /tmp/prom.txt
for want in \
    '# TYPE hummer_stage_seconds histogram' \
    'hummer_stage_seconds_bucket{stage="detect"' \
    'hummer_stage_seconds_bucket{stage="fuse"' \
    'hummer_request_seconds_bucket{endpoint="POST /query"' \
    'hummer_prepared_cache_misses_total 1' \
    'hummer_deltas_applied_total 1' \
    'hummer_trace_spans'
do
    grep -qF "$want" /tmp/prom.txt \
        || { echo "Prometheus exposition missing: $want"; cat /tmp/prom.txt; exit 1; }
done

# Lint the live scrape: HELP/TYPE present for every family, labels escaped,
# le ladders monotone and +Inf-terminated, exemplar syntax well-formed.
[ -x "$PROMLINT_BIN" ] \
    || { echo "missing $PROMLINT_BIN (build with: cargo build --release -p hummer_server --bin promlint)"; exit 1; }
"$PROMLINT_BIN" /tmp/prom.txt \
    || { echo "promlint rejected the live /metrics scrape"; exit 1; }

# Exemplars link histogram buckets to fetchable traces: any trace id the
# exposition references must be served by GET /trace/{id} end to end.
exemplar=$(grep -o 'trace_id="[0-9a-f]\{16\}"' /tmp/prom.txt | head -1 | cut -d'"' -f2)
[ -n "$exemplar" ] || { echo "no histogram exemplars on /metrics"; cat /tmp/prom.txt; exit 1; }
curl -sf "http://${ADDR}/trace/${exemplar}" -o /tmp/exemplar_trace.json \
    || { echo "GET /trace/${exemplar} (from an exemplar) failed"; exit 1; }
grep -q "\"trace\":\"${exemplar}\"" /tmp/exemplar_trace.json \
    || { echo "exemplar trace tree mismatch:"; cat /tmp/exemplar_trace.json; exit 1; }

# Every response carries X-Hummer-Trace; its span tree is served on
# /trace/{id} and covers the whole request (root named after the endpoint).
trace=$(curl -s -D - -o /dev/null -X POST "http://${ADDR}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)' \
    | tr -d '\r' | awk 'tolower($1) == "x-hummer-trace:" {print $2}')
[ -n "$trace" ] || { echo "response missing X-Hummer-Trace header"; exit 1; }
curl -sf "http://${ADDR}/trace/${trace}" -o /tmp/trace.json \
    || { echo "GET /trace/${trace} failed"; exit 1; }
grep -q '"POST /query"' /tmp/trace.json \
    || { echo "trace tree missing request root:"; cat /tmp/trace.json; exit 1; }
grep -q '"serialize"' /tmp/trace.json \
    || { echo "trace tree missing serialize span:"; cat /tmp/trace.json; exit 1; }

# Graceful shutdown: the endpoint answers, then the process exits 0.
curl -sf -X POST "http://${ADDR}/shutdown" >/dev/null
wait "$SERVER_PID"

# --- Durability: kill -9, restart on the same --data-dir --------------------

wait_healthy() {
    for _ in $(seq 1 50); do
        if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    curl -sf "http://$1/healthz" >/dev/null
}

# The query response minus the (run-dependent) timing fields: everything up
# to "row_count", i.e. exactly the fused result table. Our JSON writer emits
# keys in a fixed order, so equal strings == byte-identical results.
result_of() { sed 's/,"cache".*//' "$1"; }

PORT2=$((PORT + 1))
ADDR2="127.0.0.1:${PORT2}"
"$BIN" --addr "$ADDR2" --threads 2 --narrow-schemas --data-dir "$DATA_DIR" &
SERVER_PID=$!
wait_healthy "$ADDR2"

curl -sf -X PUT "http://${ADDR2}/tables/EE_Student" \
    --data-binary $'Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n' >/dev/null
curl -sf -X PUT "http://${ADDR2}/tables/CS_Students" \
    --data-binary $'FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n' >/dev/null
# A delta that must survive the crash (acked => durable).
curl -sf -X POST "http://${ADDR2}/tables/CS_Students/delta" \
    -H 'content-type: application/json' \
    -d '{"insert": [["Grace Hopper", "37", "Arlington"]]}' >/dev/null
curl -sf -X POST "http://${ADDR2}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)' \
    -o /tmp/durable_before.json
grep -q '"row_count":5' /tmp/durable_before.json \
    || { echo "pre-crash fusion wrong:"; cat /tmp/durable_before.json; exit 1; }

# Crash hard; no graceful shutdown, no flush hook.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# Restart on the same directory — at a different intra-query parallelism
# degree, which must not change a single output byte.
PORT3=$((PORT + 2))
ADDR3="127.0.0.1:${PORT3}"
"$BIN" --addr "$ADDR3" --threads 2 --par 2 --narrow-schemas --data-dir "$DATA_DIR" &
SERVER_PID=$!
wait_healthy "$ADDR3"

curl -sf -X POST "http://${ADDR3}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)' \
    -o /tmp/durable_after.json
if [ "$(result_of /tmp/durable_before.json)" != "$(result_of /tmp/durable_after.json)" ]; then
    echo "recovered fusion result differs from pre-crash:"
    diff <(result_of /tmp/durable_before.json) <(result_of /tmp/durable_after.json) || true
    exit 1
fi

# Recovery is visible in /metrics.json (wal_records covers 2 registers +
# 1 delta) and the store counters are on the Prometheus exposition too.
curl -sf "http://${ADDR3}/metrics.json" -o /tmp/durable_metrics.json
grep -q '"recovery_ms"' /tmp/durable_metrics.json \
    || { echo "store metrics missing recovery_ms:"; cat /tmp/durable_metrics.json; exit 1; }
grep -q '"wal_records":3' /tmp/durable_metrics.json \
    || { echo "unexpected wal_records:"; cat /tmp/durable_metrics.json; exit 1; }
curl -sf "http://${ADDR3}/metrics" -o /tmp/durable_prom.txt
grep -qF 'hummer_store_wal_records 3' /tmp/durable_prom.txt \
    || { echo "Prometheus exposition missing store counters:"; cat /tmp/durable_prom.txt; exit 1; }
grep -qF 'hummer_store_recovery_seconds' /tmp/durable_prom.txt \
    || { echo "Prometheus exposition missing recovery gauge:"; cat /tmp/durable_prom.txt; exit 1; }

# DELETE is durable too: deregister, restart, still gone.
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://${ADDR3}/tables/EE_Student")
[ "$code" = 200 ] || { echo "DELETE /tables/EE_Student -> $code"; exit 1; }
curl -sf -X POST "http://${ADDR3}/shutdown" >/dev/null
wait "$SERVER_PID"

PORT4=$((PORT + 3))
ADDR4="127.0.0.1:${PORT4}"
"$BIN" --addr "$ADDR4" --threads 2 --narrow-schemas --data-dir "$DATA_DIR" &
SERVER_PID=$!
wait_healthy "$ADDR4"
curl -sf "http://${ADDR4}/tables" | grep -vq 'EE_Student' \
    || { echo "deregistered table came back after restart"; exit 1; }
curl -sf -X POST "http://${ADDR4}/shutdown" >/dev/null
wait "$SERVER_PID"

# --- Event loop: 128-connection burst, kill -9 mid group-commit window ------

[ -x "$LOADGEN_BIN" ] \
    || { echo "missing $LOADGEN_BIN (build with: cargo build --release -p hummer_server --bin loadgen)"; exit 1; }

# A mixed read/write burst at event-loop scale: 128 concurrent connections,
# one in eight requests a delta update. loadgen exits nonzero on any
# request error, so success means the nonblocking path served the whole
# burst without dropping or corrupting a response.
PORT5=$((PORT + 4))
ADDR5="127.0.0.1:${PORT5}"
"$BIN" --addr "$ADDR5" --threads 2 --narrow-schemas &
SERVER_PID=$!
wait_healthy "$ADDR5"
"$LOADGEN_BIN" --addr "$ADDR5" --connections 128 --requests 640 \
    --worlds 2 --entities 30 --update-ratio 0.125 >/tmp/burst.txt \
    || { echo "128-connection burst failed:"; cat /tmp/burst.txt; exit 1; }
grep -q '^requests_err     0$' /tmp/burst.txt \
    || { echo "burst reported request errors:"; cat /tmp/burst.txt; exit 1; }
curl -sf -X POST "http://${ADDR5}/shutdown" >/dev/null
wait "$SERVER_PID"

# Crash inside a group-commit window. The server runs with a widened
# (5 ms) window so concurrent deltas batch into shared fsyncs; the deltas
# only flap EE_Student's John Smith between two ages that both lose the
# RESOLVE(Age, max) against CS_Students' 25, so whatever acked prefix of
# the torn batch survives the kill -9, the fused output is byte-identical.
DATA_DIR2=$(mktemp -d)
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true; rm -rf "$DATA_DIR" "$DATA_DIR2"' EXIT
PORT6=$((PORT + 5))
ADDR6="127.0.0.1:${PORT6}"
"$BIN" --addr "$ADDR6" --threads 2 --narrow-schemas \
    --data-dir "$DATA_DIR2" --group-commit-window-us 5000 &
SERVER_PID=$!
wait_healthy "$ADDR6"

curl -sf -X PUT "http://${ADDR6}/tables/EE_Student" \
    --data-binary $'Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n' >/dev/null
curl -sf -X PUT "http://${ADDR6}/tables/CS_Students" \
    --data-binary $'FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n' >/dev/null
curl -sf -X POST "http://${ADDR6}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)' \
    -o /tmp/gc_before.json
grep -q '"row_count":4' /tmp/gc_before.json \
    || { echo "pre-crash fusion wrong:"; cat /tmp/gc_before.json; exit 1; }

# 64 concurrent fusion-invariant deltas, then kill -9 while they are still
# queueing into the 5 ms group-commit window.
for i in $(seq 1 64); do
    age=$((20 + (i % 2) * 4))
    curl -s -o /dev/null -X POST "http://${ADDR6}/tables/EE_Student/delta" \
        -H 'content-type: application/json' \
        -d "{\"update\": [{\"row\": 0, \"values\": [\"John Smith\", \"${age}\", \"Berlin\"]}]}" &
done
sleep 0.05
kill -9 "$SERVER_PID"
wait 2>/dev/null || true

# Restart on the same directory: recovery drops at most a torn tail, keeps
# every acked delta, and the fused result is byte-identical.
PORT7=$((PORT + 6))
ADDR7="127.0.0.1:${PORT7}"
"$BIN" --addr "$ADDR7" --threads 2 --narrow-schemas --data-dir "$DATA_DIR2" &
SERVER_PID=$!
wait_healthy "$ADDR7"
curl -sf -X POST "http://${ADDR7}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)' \
    -o /tmp/gc_after.json
if [ "$(result_of /tmp/gc_before.json)" != "$(result_of /tmp/gc_after.json)" ]; then
    echo "fusion result differs after group-commit crash recovery:"
    diff <(result_of /tmp/gc_before.json) <(result_of /tmp/gc_after.json) || true
    exit 1
fi
curl -sf -X POST "http://${ADDR7}/shutdown" >/dev/null
wait "$SERVER_PID"

# --- Coordinator: scatter to 2 workers, kill one mid-burst ------------------

upload_paper_tables() {
    curl -sf -X PUT "http://$1/tables/EE_Student" \
        --data-binary $'Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n' >/dev/null
    curl -sf -X PUT "http://$1/tables/CS_Students" \
        --data-binary $'FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n' >/dev/null
}
PAPER_QUERY='SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)'

W1="127.0.0.1:$((PORT + 7))"
W2="127.0.0.1:$((PORT + 8))"
COORD="127.0.0.1:$((PORT + 9))"
PLAIN="127.0.0.1:$((PORT + 10))"
"$BIN" --addr "$W1" --threads 2 &
W1_PID=$!
"$BIN" --addr "$W2" --threads 2 &
W2_PID=$!
"$BIN" --addr "$PLAIN" --threads 2 --narrow-schemas &
PLAIN_PID=$!
trap 'kill -9 "$W1_PID" "$W2_PID" "$PLAIN_PID" "$SERVER_PID" 2>/dev/null || true; rm -rf "$DATA_DIR" "$DATA_DIR2"' EXIT
wait_healthy "$W1"
wait_healthy "$W2"
"$BIN" --addr "$COORD" --threads 2 --narrow-schemas \
    --coordinator "workers=${W1},${W2}" --shards 4 &
SERVER_PID=$!
wait_healthy "$COORD"
wait_healthy "$PLAIN"

# Cold query through the coordinator: the scatter must reach the workers,
# the response must carry X-Hummer-Shards, and the fused result must be
# byte-identical to a plain (non-coordinated) server's.
upload_paper_tables "$COORD"
upload_paper_tables "$PLAIN"
shards=$(curl -s -D - -o /tmp/coord.json -X POST "http://${COORD}/query" -d "$PAPER_QUERY" \
    | tr -d '\r' | awk 'tolower($1) == "x-hummer-shards:" {print $2}')
[ -n "$shards" ] && [ "$shards" -ge 1 ] \
    || { echo "coordinator response missing X-Hummer-Shards"; cat /tmp/coord.json; exit 1; }
curl -sf -X POST "http://${PLAIN}/query" -d "$PAPER_QUERY" -o /tmp/plain.json
if [ "$(result_of /tmp/coord.json)" != "$(result_of /tmp/plain.json)" ]; then
    echo "coordinated fusion result differs from the plain server:"
    diff <(result_of /tmp/coord.json) <(result_of /tmp/plain.json) || true
    exit 1
fi
curl -sf "http://${COORD}/metrics.json" | grep -q '"worker_requests":0' \
    && { echo "coordinator never scattered to its workers"; exit 1; } || true

# Kill one worker mid-burst: cold prepares keep scattering, their batches
# retry on the survivor (or fall back locally), and not one request fails.
"$LOADGEN_BIN" --addr "$COORD" --connections 16 --requests 96 \
    --worlds 3 --entities 30 --coordinator-mode >/tmp/coord_burst.txt &
LOADGEN_PID=$!
sleep 0.2
kill -9 "$W2_PID"
wait "$LOADGEN_PID" || { echo "coordinator burst failed:"; cat /tmp/coord_burst.txt; exit 1; }
grep -q '^requests_err     0$' /tmp/coord_burst.txt \
    || { echo "burst reported request errors:"; cat /tmp/coord_burst.txt; exit 1; }

# With W2 still dead, a cold scatter — a source set the prepared cache has
# never seen — must retry its batches onto W1 and stay byte-identical to
# the plain server. (A delta would not do: it upgrades the cached pipeline
# in place, so only fresh tables force a scatter.)
for a in "$COORD" "$PLAIN"; do
    curl -sf -X PUT "http://${a}/tables/Alumni" \
        --data-binary $'Name,Age,City\nJohn Smith,26,Berlin\nGrace Hopper,37,Arlington\nMary Jones,23,Hamburg\n' >/dev/null
done
COLD_QUERY='SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, Alumni FUSE BY (Name)'
curl -sf -X POST "http://${COORD}/query" -d "$COLD_QUERY" -o /tmp/coord2.json
curl -sf -X POST "http://${PLAIN}/query" -d "$COLD_QUERY" -o /tmp/plain2.json
grep -q '"cache":"miss"' /tmp/coord2.json \
    || { echo "expected a cold scatter for the fresh source set:"; cat /tmp/coord2.json; exit 1; }
if [ "$(result_of /tmp/coord2.json)" != "$(result_of /tmp/plain2.json)" ]; then
    echo "coordinated result differs from the plain server with a worker dead:"
    diff <(result_of /tmp/coord2.json) <(result_of /tmp/plain2.json) || true
    exit 1
fi

curl -sf -X POST "http://${COORD}/shutdown" >/dev/null
wait "$SERVER_PID"
curl -sf -X POST "http://${PLAIN}/shutdown" >/dev/null
wait "$PLAIN_PID"
curl -sf -X POST "http://${W1}/shutdown" >/dev/null
wait "$W1_PID"
wait "$W2_PID" 2>/dev/null || true

trap - EXIT
rm -rf "$DATA_DIR" "$DATA_DIR2"
echo "server smoke test OK (addr ${ADDR}, durable restart on ${ADDR3}, group-commit crash on ${ADDR7}, coordinator on ${COORD})"
