#!/usr/bin/env bash
# Smoke-test a release build of hummer-serve: start it on an ephemeral-ish
# port, upload the paper's two student tables, run the paper's FUSE query,
# assert HTTP 200 and the fused row count, then shut down gracefully.
set -euo pipefail

BIN=${BIN:-./target/release/hummer-serve}
PORT=${PORT:-$((20000 + RANDOM % 20000))}
ADDR="127.0.0.1:${PORT}"

"$BIN" --addr "$ADDR" --threads 2 --narrow-schemas &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
    if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -sf "http://${ADDR}/healthz" >/dev/null

# Upload the paper's example tables (must both answer 200).
code=$(curl -s -o /tmp/put1.json -w '%{http_code}' -X PUT "http://${ADDR}/tables/EE_Student" \
    --data-binary $'Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n')
[ "$code" = 200 ] || { echo "PUT EE_Student -> $code"; cat /tmp/put1.json; exit 1; }
code=$(curl -s -o /tmp/put2.json -w '%{http_code}' -X PUT "http://${ADDR}/tables/CS_Students" \
    --data-binary $'FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n')
[ "$code" = 200 ] || { echo "PUT CS_Students -> $code"; cat /tmp/put2.json; exit 1; }

# The paper's query: 6 heterogeneous rows fuse into 4 students.
code=$(curl -s -o /tmp/query.json -w '%{http_code}' -X POST "http://${ADDR}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)')
[ "$code" = 200 ] || { echo "POST /query -> $code"; cat /tmp/query.json; exit 1; }
grep -q '"row_count":4' /tmp/query.json || { echo "unexpected fusion result:"; cat /tmp/query.json; exit 1; }

# Unknown tables must 404.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR}/query" -d 'SELECT * FROM Ghosts')
[ "$code" = 404 ] || { echo "expected 404 for unknown table, got $code"; exit 1; }

# Delta ingestion: insert a fifth student, which must *upgrade* the cached
# prepared pipeline (not invalidate it) — the re-query reflects the insert
# AND reports a cache hit, i.e. no cold re-prepare.
code=$(curl -s -o /tmp/delta.json -w '%{http_code}' -X POST "http://${ADDR}/tables/CS_Students/delta" \
    -H 'content-type: application/json' \
    -d '{"insert": [["Grace Hopper", "37", "Arlington"]]}')
[ "$code" = 200 ] || { echo "POST delta -> $code"; cat /tmp/delta.json; exit 1; }
grep -q '"upgraded":1' /tmp/delta.json || { echo "delta did not upgrade the cache:"; cat /tmp/delta.json; exit 1; }

code=$(curl -s -o /tmp/query2.json -w '%{http_code}' -X POST "http://${ADDR}/query" \
    -d 'SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)')
[ "$code" = 200 ] || { echo "POST /query after delta -> $code"; cat /tmp/query2.json; exit 1; }
grep -q '"row_count":5' /tmp/query2.json || { echo "delta not reflected:"; cat /tmp/query2.json; exit 1; }
grep -q '"cache":"hit"' /tmp/query2.json || { echo "expected an upgraded-cache hit:"; cat /tmp/query2.json; exit 1; }

# Delta counters are visible in /metrics.
curl -sf "http://${ADDR}/metrics" | grep -q '"cache_upgrades":1' \
    || { echo "delta counters missing from /metrics"; exit 1; }

# Graceful shutdown: the endpoint answers, then the process exits 0.
curl -sf -X POST "http://${ADDR}/shutdown" >/dev/null
wait "$SERVER_PID"
trap - EXIT
echo "server smoke test OK (addr ${ADDR})"
