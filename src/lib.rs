//! # HumMer — automatic data fusion
//!
//! A Rust reproduction of *"Automatic Data Fusion with HumMer"* (Bilke,
//! Bleiholder, Böhm, Draba, Naumann, Weis — VLDB 2005): ad-hoc, declarative
//! fusion of heterogeneous, dirty, duplicate-ridden data through three
//! fully automatic steps — instance-based schema matching (DUMAS),
//! duplicate detection (DogmatiX mapped to relations), and conflict
//! resolution via the Fuse By SQL extension.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`engine`] | relational substrate (XXL stand-in): tables, expressions, full outer union |
//! | [`textsim`] | Levenshtein, Jaro-Winkler, TF-IDF, SoftTFIDF, soft IDF |
//! | [`matching`] | DUMAS schema matching + Hungarian algorithm + transformation |
//! | [`dupdetect`] | duplicate detection: measure, filter, blocking, transitive closure |
//! | [`fusion`] | conflict-resolution functions, fusion operator, lineage |
//! | [`delta`] | delta ingestion + incremental maintenance of clusters and fused views |
//! | [`store`] | durable catalog: checksummed snapshots + delta WAL, crash recovery, compaction |
//! | [`query`] | the Fuse By SQL dialect (Fig. 1): parser + executor |
//! | [`datagen`] | synthetic dirty worlds with gold standards + metrics |
//! | [`core`](mod@core) | repository + automatic pipeline + six-step wizard |
//! | [`shard`] | scatter-gather executor: shard planner, worker/combiner split, coordinator client |
//! | [`server`] | HumMer as a service: multi-threaded HTTP fusion queries + prepared-pipeline cache |
//!
//! ## Quickstart
//!
//! ```
//! use hummer::core::{Hummer, ResolutionSpec};
//! use hummer::engine::table;
//!
//! let mut hummer = Hummer::new();
//! hummer.repository_mut().register_table("EE_Student", table! {
//!     "EE_Student" => ["Name", "Age"];
//!     ["John Smith", 24],
//!     ["Mary Jones", 22],
//! }).unwrap();
//! hummer.repository_mut().register_table("CS_Students", table! {
//!     "CS_Students" => ["FullName", "Years"];
//!     ["John Smith", 25],
//! }).unwrap();
//!
//! // The paper's query, against heterogeneous unaligned sources:
//! let out = hummer.query(
//!     "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)"
//! ).unwrap();
//! assert_eq!(out.table.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hummer_core as core;
pub use hummer_datagen as datagen;
pub use hummer_delta as delta;
pub use hummer_dupdetect as dupdetect;
pub use hummer_engine as engine;
pub use hummer_fusion as fusion;
pub use hummer_matching as matching;
pub use hummer_obs as obs;
pub use hummer_query as query;
pub use hummer_server as server;
pub use hummer_shard as shard;
pub use hummer_store as store;
pub use hummer_textsim as textsim;
